package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/telemetry"
)

// ErrNoReplica is returned when every candidate node for an address was
// down or exhausted its retry budget; the TCP front-end maps it to
// StatusUnavailable.
var ErrNoReplica = errors.New("cluster: no healthy replica")

// maxReplicas bounds the replication factor (stack buffers on the
// routing path are sized by it).
const maxReplicas = 4

// Config parameterizes a Router.
type Config struct {
	// Nodes is the initial backend set.
	Nodes []Node
	// VNodes is the virtual-point count per node (DefaultVNodes when 0).
	VNodes int
	// Replication is the number of distinct nodes each address is written
	// to (1 = no replication, 2 = primary + follower; max 4). With R>=2 a
	// single node loss is invisible to clients: reads fail over to the
	// follower within the retry budget.
	Replication int
	// RetriesPerNode is how many extra attempts (fresh connection each)
	// one node gets before the router fails over to the next replica
	// (default 1).
	RetriesPerNode int
	// RequestTimeout bounds each backend round trip (default 2s).
	RequestTimeout time.Duration
	// HedgeAfter, when positive and Replication >= 2, fires a hedged read
	// at the follower when the primary has not answered within this
	// duration; the first response wins. Writes are never hedged (they
	// already go to every replica).
	HedgeAfter time.Duration
	// ReadRepairEvery samples every Nth read for replica divergence when
	// Replication >= 2: both replicas are read and, when they disagree,
	// the primary's copy is written back over the diverging follower
	// (default 64; 0 disables).
	ReadRepairEvery int
	// ProbeInterval is the health-probe period (default 1s; the prober
	// GETs each node's /readyz, falling back to TCP dial probes for nodes
	// without an HTTP address).
	ProbeInterval time.Duration
	// PoolMaxIdle caps each node's idle-connection pool (default 8).
	PoolMaxIdle int
	// PoolIdleTimeout reaps pooled connections idle this long (default 30s).
	PoolIdleTimeout time.Duration
	// Log receives router event lines (nil discards).
	Log io.Writer
	// NoTrace disables distributed tracing: no fleet trace IDs are minted
	// or propagated, and no hop histograms or flight records are kept.
	// Tracing is on by default (the zero Config traces) because its hot-
	// path cost is two clock reads and a ring write per attempt.
	NoTrace bool
	// HopSlots sizes the router flight-recorder ring (0 selects
	// telemetry.DefaultHopSlots).
	HopSlots int
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > maxReplicas {
		c.Replication = maxReplicas
	}
	if c.RetriesPerNode < 0 {
		c.RetriesPerNode = 0
	} else if c.RetriesPerNode == 0 {
		c.RetriesPerNode = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.ReadRepairEvery == 0 {
		c.ReadRepairEvery = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	return c
}

// nodeState is the router's live view of one backend.
type nodeState struct {
	node Node
	pool *server.Pool
	up   atomic.Bool

	// traced caches the node's protocol capability (capUnknown /
	// capTraced / capLegacy), established by one hello probe on first
	// traced use — see tracedCap in trace.go.
	traced atomic.Int32

	writes    atomic.Uint64
	reads     atomic.Uint64
	errs      atomic.Uint64
	probeErrs atomic.Uint64
}

// Router consistent-hashes addresses over backend nodes and forwards
// requests with retries, failover, optional replication and hedging. It
// is safe for concurrent use; it holds no request state beyond connection
// pools and health flags.
type Router struct {
	cfg Config

	mu    sync.RWMutex          // guards ring, nextRing, states membership
	ring  *Ring                 // current routing epoch
	next  *Ring                 // non-nil while a reshard is migrating
	state map[string]*nodeState // by node name; nodes are never removed mid-flight, only dropped after a reshard

	// Migration write-tracking: while next != nil, client writes mark
	// their address dirty (under migMu) before issuing, and the reshard
	// replay skips dirty addresses while holding migMu across its copy
	// write — see reshard.go for the ordering argument.
	migMu    sync.Mutex
	migDirty map[uint64]struct{}

	reshardMu   sync.Mutex // serializes reshards
	lastReshard atomic.Pointer[ReshardReport]

	retries   atomic.Uint64
	failovers atomic.Uint64
	hedges    atomic.Uint64
	repairs   atomic.Uint64
	readSeq   atomic.Uint64

	// Distributed-tracing state (nil / zero when Config.NoTrace): per-hop
	// latency histograms, the router flight recorder, and the fleet trace
	// ID source (traceBase + traceSeq). See trace.go.
	hops      *telemetry.HopHistograms
	flight    *telemetry.HopRecorder
	traceBase uint64
	traceSeq  atomic.Uint64

	probeStop chan struct{}
	probeDone chan struct{}
}

// NewRouter builds a router over cfg.Nodes at ring epoch 1 and starts its
// health prober. Nodes start healthy ("innocent until probed guilty") so
// traffic flows before the first probe completes.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, 1)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:       cfg,
		ring:      ring,
		state:     make(map[string]*nodeState),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	if !cfg.NoTrace {
		r.hops = &telemetry.HopHistograms{}
		r.flight = telemetry.NewHopRecorder(cfg.HopSlots)
		// Boot-time base, shifted to dwarf node-local IDs; the hopSeq term
		// separates routers booted in the same nanosecond (tests).
		r.traceBase = (uint64(time.Now().UnixNano()) + hopSeq.Add(1)*1e9) << 20
	}
	for _, n := range ring.Nodes() {
		r.addState(n)
	}
	go r.probeLoop()
	return r, nil
}

// addState registers pool+health tracking for a node (idempotent).
// Callers hold r.mu or run before the router is shared.
func (r *Router) addState(n Node) *nodeState {
	if st, ok := r.state[n.Name]; ok {
		return st
	}
	st := &nodeState{
		node: n,
		pool: server.NewPool(n.TCPAddr, r.cfg.PoolMaxIdle, r.cfg.PoolIdleTimeout),
	}
	st.up.Store(true)
	r.state[n.Name] = st
	return st
}

// Ring returns the current routing ring.
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// Epoch returns the current ring epoch.
func (r *Router) Epoch() uint64 { return r.Ring().Epoch() }

// Resharding reports whether a migration is in flight.
func (r *Router) Resharding() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.next != nil
}

// Healthy reports the router's live view of the named node.
func (r *Router) Healthy(name string) bool {
	r.mu.RLock()
	st := r.state[name]
	r.mu.RUnlock()
	return st != nil && st.up.Load()
}

// HealthyNodes returns how many members of the current ring are up.
func (r *Router) HealthyNodes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, node := range r.ring.Nodes() {
		if st := r.state[node.Name]; st != nil && st.up.Load() {
			n++
		}
	}
	return n
}

// markDown records a data-path failure: the node is taken out of rotation
// immediately (passively) rather than waiting for the prober to notice.
// The prober revives it when /readyz answers again.
func (r *Router) markDown(st *nodeState, err error) {
	r.markDownTr(st, err, 0, 0, 0)
}

func (r *Router) logf(format string, args ...interface{}) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, format+"\n", args...)
	}
}

// routeSet collects the candidate nodes for one request: the replica set
// under the current ring, plus — for writes during a migration — the
// replica set under the next ring (dual-write), deduplicated, in
// primary-first order.
func (r *Router) routeSet(addr uint64, forWrite bool, buf []*nodeState) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var idx [maxReplicas]int
	n := 0
	add := func(node Node) {
		st := r.state[node.Name]
		if st == nil {
			return
		}
		for i := 0; i < n; i++ {
			if buf[i] == st {
				return
			}
		}
		if n < len(buf) {
			buf[n] = st
			n++
		}
	}
	k := r.ring.ReplicasInto(addr, r.cfg.Replication, idx[:])
	for i := 0; i < k; i++ {
		add(r.ring.Node(idx[i]))
	}
	if forWrite && r.next != nil {
		k = r.next.ReplicasInto(addr, r.cfg.Replication, idx[:])
		for i := 0; i < k; i++ {
			add(r.next.Node(idx[i]))
		}
	}
	return n
}

// retryable reports whether an error is worth a fresh attempt on the
// same node. Flow-control rejections (overloaded, timeout) may clear on
// retry; ErrClosing means the node is draining and retry is futile.
func retryable(err error) bool {
	return errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrTimeout)
}

// isStatusErr reports whether err is a protocol-level status (the
// connection completed the frame cleanly and can be reused).
func isStatusErr(err error) bool {
	return errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrTimeout) ||
		errors.Is(err, server.ErrClosing) || errors.Is(err, server.ErrUnavailable)
}

// doNode runs one operation against one node with the per-node retry
// budget: each attempt borrows a pooled connection with a request
// deadline; I/O failures discard the connection and retry on a fresh
// dial. Exhausting the budget (or hitting a drain/connection error on
// the last attempt) marks the node down and returns the last error.
// Control traffic (flush, stats, probes) routes through here; data paths
// use doNodeCtx (trace.go), which is this loop plus hop recording.
func (r *Router) doNode(st *nodeState, f func(c *server.TCPClient) error) error {
	return r.doNodeCtx(st, 0, 0, 0, f)
}

// Write routes one write to every healthy replica of addr (including the
// next ring's replicas while a reshard migrates). It succeeds when at
// least one replica accepted the write; the first (most-primary)
// successful response is returned. A fleet trace ID is minted for the
// request (see WriteTraced to supply one).
func (r *Router) Write(addr uint64, line ecc.Line) (server.WriteResponse, error) {
	return r.WriteTraced(r.NewTraceID(), addr, line)
}

// WriteTraced is Write under a caller-supplied trace ID (the cluster
// TCP front-end passes the client's wire ID; 0 routes untraced).
func (r *Router) WriteTraced(trace uint64, addr uint64, line ecc.Line) (server.WriteResponse, error) {
	began := r.hopClock()
	r.markDirty(addr)
	var set [2 * maxReplicas]*nodeState
	n := r.routeSet(addr, true, set[:])
	var resp server.WriteResponse
	var lastErr error
	ok := false
	primaryOK := false
	for i := 0; i < n; i++ {
		st := set[i]
		if !st.up.Load() {
			continue
		}
		var out server.WriteResponse
		err := r.doNodeCtx(st, trace, server.OpWrite, addr, func(c *server.TCPClient) error {
			var err error
			if trace != 0 && r.tracedCap(st) {
				out, err = c.WriteTraced(trace, addr, line)
			} else {
				out, err = c.Write(addr, line)
			}
			return err
		})
		if err != nil {
			lastErr = err
			continue
		}
		st.writes.Add(1)
		if i == 0 {
			primaryOK = true
		}
		if !ok {
			resp, ok = out, true
			if ok && !primaryOK {
				// The primary never took this write; the first acceptor was a
				// replica further down the set.
				r.hopNow(telemetry.HopFailover, trace, server.OpWrite, st.node.Name, addr, i, 0)
			}
		}
	}
	if ok && !primaryOK {
		// The write landed, but not on the primary: a replica absorbed it.
		r.failovers.Add(1)
	}
	if !ok {
		if lastErr == nil {
			lastErr = ErrNoReplica
		}
		r.hop(telemetry.HopRoute, trace, server.OpWrite, "", addr, 0, hopStatus(lastErr), began)
		return server.WriteResponse{}, fmt.Errorf("%w (addr=%d): %v", ErrNoReplica, addr, lastErr)
	}
	resp.Trace = trace
	r.hop(telemetry.HopRoute, trace, server.OpWrite, "", addr, 0, server.StatusOK, began)
	return resp, nil
}

// markDirty records addr as client-written while a migration is in
// flight, so the reshard replay will not clobber it with a stale
// snapshot (see reshard.go).
func (r *Router) markDirty(addr uint64) {
	r.mu.RLock()
	migrating := r.next != nil
	r.mu.RUnlock()
	if !migrating {
		return
	}
	r.migMu.Lock()
	if r.migDirty != nil {
		r.migDirty[addr] = struct{}{}
	}
	r.migMu.Unlock()
}

// Read routes one read to addr's primary, failing over to the follower
// replicas on error, with optional hedging and sampled read repair. A
// fleet trace ID is minted for the request (see ReadTraced to supply one).
func (r *Router) Read(addr uint64) (server.ReadResponse, error) {
	return r.ReadTraced(r.NewTraceID(), addr)
}

// ReadTraced is Read under a caller-supplied trace ID (0 routes
// untraced).
func (r *Router) ReadTraced(trace uint64, addr uint64) (server.ReadResponse, error) {
	began := r.hopClock()
	resp, err := r.readRouted(trace, addr)
	if err == nil {
		resp.Trace = trace
	}
	r.hop(telemetry.HopRoute, trace, server.OpRead, "", addr, 0, hopStatus(err), began)
	return resp, err
}

func (r *Router) readRouted(trace uint64, addr uint64) (server.ReadResponse, error) {
	var set [2 * maxReplicas]*nodeState
	n := r.routeSet(addr, false, set[:])

	if r.cfg.ReadRepairEvery > 0 && r.cfg.Replication >= 2 && n >= 2 &&
		r.readSeq.Add(1)%uint64(r.cfg.ReadRepairEvery) == 0 {
		if resp, done := r.readRepair(trace, addr, set[:n]); done {
			return resp, nil
		}
	}

	if r.cfg.HedgeAfter > 0 && n >= 2 && set[0].up.Load() && set[1].up.Load() {
		return r.readHedged(trace, addr, set[0], set[1])
	}

	var lastErr error
	for i := 0; i < n; i++ {
		st := set[i]
		if !st.up.Load() {
			continue
		}
		resp, err := r.readNode(st, trace, addr)
		if err != nil {
			lastErr = err
			continue
		}
		if i > 0 {
			// Served by a follower because the primary was down or failed.
			r.failovers.Add(1)
			r.hopNow(telemetry.HopFailover, trace, server.OpRead, st.node.Name, addr, i, 0)
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrNoReplica
	}
	return server.ReadResponse{}, fmt.Errorf("%w (addr=%d): %v", ErrNoReplica, addr, lastErr)
}

func (r *Router) readNode(st *nodeState, trace uint64, addr uint64) (server.ReadResponse, error) {
	var out server.ReadResponse
	err := r.doNodeCtx(st, trace, server.OpRead, addr, func(c *server.TCPClient) error {
		var err error
		if trace != 0 && r.tracedCap(st) {
			out, err = c.ReadTraced(trace, addr)
		} else {
			out, err = c.Read(addr)
		}
		return err
	})
	if err == nil {
		st.reads.Add(1)
	}
	return out, err
}

// readHedged races the primary against a delayed follower request and
// returns the first success. The loser finishes in the background (its
// connection returns to the pool through the normal path), which is what
// puts the propagated trace ID in BOTH nodes' flight recorders — the
// winner's and the loser's — for esdtrace to stitch.
func (r *Router) readHedged(trace uint64, addr uint64, primary, follower *nodeState) (server.ReadResponse, error) {
	type result struct {
		from *nodeState
		resp server.ReadResponse
		err  error
	}
	ch := make(chan result, 2)
	go func() {
		resp, err := r.readNode(primary, trace, addr)
		ch <- result{primary, resp, err}
	}()
	timer := time.NewTimer(r.cfg.HedgeAfter)
	defer timer.Stop()
	launched := 1
	hedged := false
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				if hedged && res.from == follower {
					r.hopNow(telemetry.HopHedgeWin, trace, server.OpRead, follower.node.Name, addr, 0, 0)
				}
				return res.resp, nil
			}
			launched--
			if launched == 0 {
				// Both attempts failed (or the only one did and the timer
				// has not fired): fall back to launching the follower
				// synchronously if it never ran.
				if timer.Stop() {
					r.failovers.Add(1)
					r.hopNow(telemetry.HopFailover, trace, server.OpRead, follower.node.Name, addr, 1, 0)
					return r.readNode(follower, trace, addr)
				}
				return server.ReadResponse{}, res.err
			}
		case <-timer.C:
			r.hedges.Add(1)
			r.hopNow(telemetry.HopHedge, trace, server.OpRead, follower.node.Name, addr, 0, 0)
			hedged = true
			launched++
			go func() {
				resp, err := r.readNode(follower, trace, addr)
				ch <- result{follower, resp, err}
			}()
		}
	}
}

// readRepair reads every healthy replica and reconciles divergence: when
// exactly one side holds the line the copy is propagated, and when both
// hold different bytes the primary (write-order owner) wins. done=false
// means no replica could serve the read and the caller should fall back
// to the normal path.
func (r *Router) readRepair(trace uint64, addr uint64, set []*nodeState) (server.ReadResponse, bool) {
	type got struct {
		st   *nodeState
		resp server.ReadResponse
	}
	var oks []got
	for _, st := range set {
		if !st.up.Load() {
			continue
		}
		resp, err := r.readNode(st, trace, addr)
		if err != nil {
			continue
		}
		oks = append(oks, got{st, resp})
	}
	if len(oks) == 0 {
		return server.ReadResponse{}, false
	}
	auth := oks[0] // primary-most successful replica is authoritative
	if auth.resp.Hit {
		var line ecc.Line
		copy(line[:], auth.resp.Data)
		for _, g := range oks[1:] {
			if g.resp.Hit && string(g.resp.Data) == string(auth.resp.Data) {
				continue
			}
			r.repairs.Add(1)
			r.logf("cluster: read repair addr=%d (trace=%d): rewriting %s from %s", addr, trace, g.st.node.Name, auth.st.node.Name)
			began := r.hopClock()
			_ = r.doNodeCtx(g.st, trace, server.OpWrite, addr, func(c *server.TCPClient) error {
				var err error
				if trace != 0 && r.tracedCap(g.st) {
					_, err = c.WriteTraced(trace, addr, line)
				} else {
					_, err = c.Write(addr, line)
				}
				return err
			})
			r.hop(telemetry.HopReadRepair, trace, server.OpWrite, g.st.node.Name, addr, 0, 0, began)
		}
	}
	return auth.resp, true
}

// Flush fans a flush out to every healthy node of the current ring (and
// the next ring mid-migration); it fails if any reachable node fails.
func (r *Router) Flush() error {
	var firstErr error
	for _, st := range r.allStates() {
		if !st.up.Load() {
			continue
		}
		err := r.doNode(st, func(c *server.TCPClient) error { return c.Flush() })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats aggregates /v1/stats-equivalent counters across healthy nodes.
func (r *Router) Stats() (server.StatsResponse, error) {
	var sum server.StatsResponse
	got := 0
	for _, st := range r.allStates() {
		if !st.up.Load() {
			continue
		}
		var out server.StatsResponse
		err := r.doNode(st, func(c *server.TCPClient) error {
			var err error
			out, err = c.Stats()
			return err
		})
		if err != nil {
			continue
		}
		if got == 0 {
			sum.Scheme = out.Scheme
		}
		got++
		sum.Shards += out.Shards
		sum.Writes += out.Writes
		sum.Reads += out.Reads
		sum.DedupWrites += out.DedupWrites
		sum.UniqueWrites += out.UniqueWrites
		sum.DeviceWrites += out.DeviceWrites
		sum.EnergyNJ += out.EnergyNJ
		sum.MetadataNVMM += out.MetadataNVMM
		sum.Coalesced += out.Coalesced
		sum.Shed += out.Shed
		if out.MaxWear > sum.MaxWear {
			sum.MaxWear = out.MaxWear
		}
		if out.SimNowNs > sum.SimNowNs {
			sum.SimNowNs = out.SimNowNs
		}
	}
	if got == 0 {
		return sum, ErrNoReplica
	}
	if sum.Writes+sum.Reads > 0 {
		sum.DedupRate = float64(sum.DedupWrites) / float64(max64(sum.Writes, 1))
	}
	return sum, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// allStates snapshots the tracked nodes: ring members first (in ring
// order), then any next-ring additions.
func (r *Router) allStates() []*nodeState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*nodeState
	seen := make(map[string]bool)
	collect := func(ring *Ring) {
		if ring == nil {
			return
		}
		for _, n := range ring.Nodes() {
			if seen[n.Name] {
				continue
			}
			seen[n.Name] = true
			if st := r.state[n.Name]; st != nil {
				out = append(out, st)
			}
		}
	}
	collect(r.ring)
	collect(r.next)
	return out
}

// Close stops the prober and closes every connection pool.
func (r *Router) Close() {
	close(r.probeStop)
	<-r.probeDone
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.state {
		st.pool.Close()
	}
}

// probeLoop polls node health every ProbeInterval until Close.
func (r *Router) probeLoop() {
	defer close(r.probeDone)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
			r.ProbeOnce()
		}
	}
}

// dialProbe is the TCP fallback health probe for nodes without an HTTP
// address: a successful dial counts as alive.
func dialProbe(addr string, timeout time.Duration) error {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	return c.Close()
}
