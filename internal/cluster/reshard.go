package cluster

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/trace"
)

// ReshardReport summarizes one completed reshard cutover.
type ReshardReport struct {
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
	// Scanned is the address-space size examined; Moved counts snapshot
	// records replayed onto new owners; SkippedDirty counts records
	// dropped because a client write superseded them mid-migration;
	// Unreadable counts moving addresses whose old replicas were all
	// unreachable (their data could not be migrated).
	Scanned      uint64 `json:"scanned"`
	Moved        uint64 `json:"moved"`
	SkippedDirty uint64 `json:"skipped_dirty"`
	Unreadable   uint64 `json:"unreadable"`
	// PerNode counts records replayed per destination node.
	PerNode    map[string]uint64 `json:"per_node"`
	DurationMs float64           `json:"duration_ms"`
}

// Reshard migrates the cluster onto a new node set and flips the ring
// epoch, while the router keeps serving:
//
//  1. the next ring is published — client writes now dual-write to their
//     replicas under both rings and mark their address dirty;
//  2. snapshot: every address whose replica set gains a node is read
//     from its current owners into a shard.Replay-compatible
//     trace.Record stream per destination;
//  3. replay: each destination's stream is written onto it, skipping
//     addresses a concurrent client write already delivered (the replay
//     holds the migration lock across each copy write, and writers mark
//     dirty under the same lock before issuing, so a stale snapshot can
//     never overwrite a newer client write);
//  4. cutover: the ring pointer flips to the new epoch, dual-writes
//     stop, and nodes that left the ring have their pools closed.
//
// space bounds the scanned logical address space (the same bound the
// workload uses, e.g. esdload -space). Reshards serialize; the router
// stays fully available throughout.
func (r *Router) Reshard(newNodes []Node, space uint64) (*ReshardReport, error) {
	r.reshardMu.Lock()
	defer r.reshardMu.Unlock()
	start := time.Now()

	cur := r.Ring()
	next, err := NewRing(newNodes, cur.VNodes(), cur.Epoch()+1)
	if err != nil {
		return nil, err
	}
	rep := &ReshardReport{
		FromEpoch: cur.Epoch(),
		ToEpoch:   next.Epoch(),
		Scanned:   space,
		PerNode:   make(map[string]uint64),
	}
	r.logf("cluster: reshard epoch %d -> %d: %d -> %d nodes, scanning %d addresses",
		rep.FromEpoch, rep.ToEpoch, len(cur.Nodes()), len(next.Nodes()), space)

	// Phase 1: publish the next ring (dual-writes + dirty tracking on).
	// The dirty set exists before the next ring is visible, so every
	// writer that dual-writes also marks.
	r.migMu.Lock()
	r.migDirty = make(map[uint64]struct{})
	r.migMu.Unlock()
	r.mu.Lock()
	for _, n := range next.Nodes() {
		r.addState(n)
	}
	r.next = next
	r.mu.Unlock()

	// Phase 2: snapshot moving ranges into per-destination trace streams.
	streams := r.snapshotMoved(cur, next, space, rep)

	// Phase 3: replay each stream onto its new owner.
	for name, recs := range streams {
		r.mu.RLock()
		st := r.state[name]
		r.mu.RUnlock()
		if st == nil {
			continue
		}
		moved, skipped := r.replayOnto(st, trace.NewSliceStream(recs))
		rep.Moved += moved
		rep.SkippedDirty += skipped
		rep.PerNode[name] = moved
	}

	// Phase 4: cutover — flip the epoch, stop dual-writes, drop departed
	// nodes.
	r.mu.Lock()
	r.ring = next
	r.next = nil
	for name, st := range r.state {
		if _, ok := next.NodeByName(name); !ok {
			st.pool.Close()
			delete(r.state, name)
		}
	}
	r.mu.Unlock()
	r.migMu.Lock()
	r.migDirty = nil
	r.migMu.Unlock()

	rep.DurationMs = float64(time.Since(start)) / float64(time.Millisecond)
	r.lastReshard.Store(rep)
	r.logf("cluster: reshard cutover to epoch %d: moved=%d skipped_dirty=%d unreadable=%d in %.1fms",
		rep.ToEpoch, rep.Moved, rep.SkippedDirty, rep.Unreadable, rep.DurationMs)
	return rep, nil
}

// LastReshard returns the most recent reshard report (nil if none ran).
func (r *Router) LastReshard() *ReshardReport { return r.lastReshard.Load() }

// snapshotMoved scans the address space and builds, for every node that
// gains an address under the next ring, a trace.Record stream of that
// address's current content (read from the old owners). The records are
// exactly what shard.Replay consumes — OpWrite with the line content —
// so a stream could equally be replayed into an in-process engine.
func (r *Router) snapshotMoved(cur, next *Ring, space uint64, rep *ReshardReport) map[string][]trace.Record {
	streams := make(map[string][]trace.Record)
	repl := r.cfg.Replication
	var oldIdx, newIdx [maxReplicas]int
	for addr := uint64(0); addr < space; addr++ {
		no := cur.ReplicasInto(addr, repl, oldIdx[:])
		nn := next.ReplicasInto(addr, repl, newIdx[:])
		var dests []string
		for i := 0; i < nn; i++ {
			name := next.Node(newIdx[i]).Name
			held := false
			for j := 0; j < no; j++ {
				if cur.Node(oldIdx[j]).Name == name {
					held = true
					break
				}
			}
			if !held {
				dests = append(dests, name)
			}
		}
		if len(dests) == 0 {
			continue
		}
		resp, err := r.readFromOld(cur, oldIdx[:no], addr)
		if err != nil {
			rep.Unreadable++
			continue
		}
		if !resp.Hit {
			continue // never written; nothing to move
		}
		var rec trace.Record
		rec.Op = trace.OpWrite
		rec.Addr = addr
		copy(rec.Data[:], resp.Data)
		for _, d := range dests {
			streams[d] = append(streams[d], rec)
		}
	}
	return streams
}

// readFromOld reads addr from the first healthy old replica.
func (r *Router) readFromOld(cur *Ring, replicas []int, addr uint64) (server.ReadResponse, error) {
	var lastErr error
	for _, ni := range replicas {
		name := cur.Node(ni).Name
		r.mu.RLock()
		st := r.state[name]
		r.mu.RUnlock()
		if st == nil || !st.up.Load() {
			continue
		}
		resp, err := r.readNode(st, 0, addr)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrNoReplica
	}
	return server.ReadResponse{}, lastErr
}

// replayOnto writes a snapshot stream onto one destination node. Each
// record is applied under the migration lock after re-checking the dirty
// set, so a concurrent client write (which marks dirty under the same
// lock before issuing) either arrives after the copy or causes the copy
// to be skipped — never the lost-update interleaving.
func (r *Router) replayOnto(st *nodeState, stream trace.Stream) (moved, skipped uint64) {
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			return moved, skipped
		}
		if err != nil {
			r.logf("cluster: reshard stream error: %v", err)
			return moved, skipped
		}
		line := rec.Data
		r.migMu.Lock()
		if _, dirty := r.migDirty[rec.Addr]; dirty {
			skipped++
			r.migMu.Unlock()
			continue
		}
		werr := r.doNode(st, func(c *server.TCPClient) error {
			_, err := c.Write(rec.Addr, line)
			return err
		})
		r.migMu.Unlock()
		if werr != nil {
			r.logf("cluster: reshard replay addr=%d onto %s failed: %v", rec.Addr, st.node.Name, werr)
			continue
		}
		moved++
	}
}

// reshardNodes applies an add/remove delta to the current ring
// membership, for the admin endpoint: names in remove leave, nodes in
// add join.
func (r *Router) reshardNodes(add []Node, remove []string) ([]Node, error) {
	cur := r.Ring().Nodes()
	drop := make(map[string]bool, len(remove))
	for _, name := range remove {
		drop[name] = true
	}
	var out []Node
	for _, n := range cur {
		if !drop[n.Name] {
			out = append(out, n)
		} else {
			delete(drop, n.Name)
		}
	}
	for name := range drop {
		return nil, fmt.Errorf("cluster: cannot remove unknown node %q", name)
	}
	for _, n := range add {
		out = append(out, n.withDefaults())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: reshard would empty the ring")
	}
	return out, nil
}
