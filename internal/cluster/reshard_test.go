package cluster

import (
	"testing"
)

// Growing the cluster mid-flight: data written under the old ring must be
// readable after the cutover, the epoch must bump, and the new node must
// actually own (and serve) part of the space.
func TestReshardGrowsCluster(t *testing.T) {
	_, r := startCluster(t, 3, Config{})
	const space = 512
	for a := uint64(0); a < space; a++ {
		if _, err := r.Write(a, lineFor(a)); err != nil {
			t.Fatalf("write %d: %v", a, err)
		}
	}

	added := startBackend(t, "node3")
	newNodes := append(append([]Node{}, r.Ring().Nodes()...), added.node)
	rep, err := r.Reshard(newNodes, space)
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if rep.FromEpoch != 1 || rep.ToEpoch != 2 {
		t.Fatalf("epochs = %d -> %d, want 1 -> 2", rep.FromEpoch, rep.ToEpoch)
	}
	if r.Epoch() != 2 {
		t.Fatalf("router epoch = %d after reshard, want 2", r.Epoch())
	}
	if rep.Moved == 0 {
		t.Fatal("reshard moved nothing — new node owns no ranges?")
	}
	if rep.Unreadable != 0 {
		t.Fatalf("reshard could not read %d addresses with all nodes up", rep.Unreadable)
	}
	if rep.PerNode["node3"] == 0 {
		t.Fatal("no records replayed onto the added node")
	}
	if r.Resharding() {
		t.Fatal("router still reports resharding after cutover")
	}

	// Every address reads back its pre-reshard content through the new ring.
	for a := uint64(0); a < space; a++ {
		resp, err := r.Read(a)
		if err != nil {
			t.Fatalf("read %d after reshard: %v", a, err)
		}
		if !resp.Hit {
			t.Fatalf("read %d after reshard: data lost in migration", a)
		}
		want := lineFor(a)
		if string(resp.Data) != string(want[:]) {
			t.Fatalf("read %d after reshard: wrong bytes", a)
		}
	}
	// The added node serves a share of reads under the new ring.
	if reads := r.state["node3"].reads.Load(); reads == 0 {
		t.Fatal("added node served no reads after cutover")
	}
	if r.LastReshard() == nil {
		t.Fatal("LastReshard lost the report")
	}
}

// Shrinking: data homed on a departing node must move to survivors before
// its pool is dropped.
func TestReshardRemovesNode(t *testing.T) {
	_, r := startCluster(t, 3, Config{})
	const space = 384
	for a := uint64(0); a < space; a++ {
		if _, err := r.Write(a, lineFor(a+7)); err != nil {
			t.Fatalf("write %d: %v", a, err)
		}
	}

	victim := r.Ring().Node(0).Name
	newNodes, err := r.reshardNodes(nil, []string{victim})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Reshard(newNodes, space)
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if rep.Moved == 0 {
		t.Fatal("removing a node moved no data")
	}
	if _, ok := r.Ring().NodeByName(victim); ok {
		t.Fatalf("removed node %s still in the ring", victim)
	}
	r.mu.RLock()
	_, tracked := r.state[victim]
	r.mu.RUnlock()
	if tracked {
		t.Fatalf("removed node %s still tracked (pool not dropped)", victim)
	}
	for a := uint64(0); a < space; a++ {
		resp, err := r.Read(a)
		if err != nil {
			t.Fatalf("read %d after shrink: %v", a, err)
		}
		if !resp.Hit {
			t.Fatalf("read %d after shrink: data lost", a)
		}
		want := lineFor(a + 7)
		if string(resp.Data) != string(want[:]) {
			t.Fatalf("read %d after shrink: wrong bytes", a)
		}
	}
}

func TestReshardNodesDelta(t *testing.T) {
	_, r := startCluster(t, 2, Config{})
	if _, err := r.reshardNodes(nil, []string{"nope"}); err == nil {
		t.Fatal("removing an unknown node accepted")
	}
	all := []string{r.Ring().Node(0).Name, r.Ring().Node(1).Name}
	if _, err := r.reshardNodes(nil, all); err == nil {
		t.Fatal("emptying the ring accepted")
	}
	out, err := r.reshardNodes([]Node{{TCPAddr: "127.0.0.1:1"}}, all[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("delta yielded %d nodes, want 2", len(out))
	}
}
