package cluster

import (
	"fmt"

	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/telemetry"
)

// Batched routing: a client batch frame is split by replica set, so each
// backend sees exactly one sub-batch frame per Router batch (one round
// trip per touched node, not per op). Sub-batches preserve the client's
// op order within each node; cross-node ordering is unordered, exactly
// as concurrent scalar writes would be.
//
// Replication semantics match the scalar paths: a write sub-batch fans
// to every healthy replica of its set (primary-first) and the
// primary-most per-op success wins; a read sub-batch walks the replicas
// primary-first and stops at the first node that answered every
// remaining op. Batched reads bypass hedging and read-repair sampling —
// those are per-address latency/consistency machinery, and the batch
// path exists for throughput. Ops that no replica accepted fall back to
// the scalar path, which retains the full retry/failover budget.

// batchGroup collects the op indices that share one replica set.
type batchGroup struct {
	set  []*nodeState
	idxs []int
}

// groupByReplicaSet buckets ops [0,n) by their (deduplicated,
// primary-first) replica set. addrOf maps an op index to its address.
func (r *Router) groupByReplicaSet(addrOf func(i int) uint64, n int, forWrite bool) []*batchGroup {
	groups := make(map[string]*batchGroup)
	var order []*batchGroup
	var buf [2 * maxReplicas]*nodeState
	var key []byte
	for i := 0; i < n; i++ {
		k := r.routeSet(addrOf(i), forWrite, buf[:])
		key = key[:0]
		for j := 0; j < k; j++ {
			key = append(key, buf[j].node.Name...)
			key = append(key, 0)
		}
		g := groups[string(key)]
		if g == nil {
			g = &batchGroup{set: append([]*nodeState(nil), buf[:k]...)}
			groups[string(key)] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
	}
	return order
}

// WriteBatch routes a batch of writes. While a reshard migration is in
// flight the whole batch takes the scalar Write path op by op — that
// path carries the dual-write and dirty-address-tracking semantics the
// replay correctness argument depends on, and migrations are rare and
// short. Otherwise ops are grouped by replica set and each group fans
// out as one sub-batch frame per healthy replica.
//
// The error return is non-nil only for caller mistakes (mismatched
// slice lengths); routing failures are reported per op in res[i].Err.
func (r *Router) WriteBatch(ops []server.BatchWriteOp, res []server.BatchWriteResult) error {
	return r.WriteBatchTraced(r.NewTraceID(), ops, res)
}

// WriteBatchTraced is WriteBatch under a caller-supplied trace ID: the
// whole batch shares one ID (per-op correlation inside a batch is the
// node-side flight recorder's job), and the route hop event records the
// replica-set fan-out in its attempt field.
func (r *Router) WriteBatchTraced(trace uint64, ops []server.BatchWriteOp, res []server.BatchWriteResult) error {
	if len(res) != len(ops) {
		return fmt.Errorf("cluster: results slice len %d != ops len %d", len(res), len(ops))
	}
	if len(ops) == 0 {
		return nil
	}
	began := r.hopClock()
	if r.Resharding() {
		for i := range ops {
			out, err := r.WriteTraced(trace, ops[i].Addr, ops[i].Line)
			if err != nil {
				res[i] = server.BatchWriteResult{Err: err}
				continue
			}
			res[i] = server.BatchWriteResult{Dedup: out.Dedup, PhysAddr: out.PhysAddr, LatencyNs: out.LatencyNs}
		}
		return nil
	}

	done := make([]bool, len(ops))
	groups := r.groupByReplicaSet(func(i int) uint64 { return ops[i].Addr }, len(ops), true)
	subOps := make([]server.BatchWriteOp, 0, len(ops))
	subRes := make([]server.BatchWriteResult, 0, len(ops))
	for _, g := range groups {
		subOps = subOps[:0]
		for _, i := range g.idxs {
			// A reshard may begin while this batch is in flight; marking
			// dirty (a no-op outside migrations) keeps the replay from
			// clobbering these addresses in that window.
			r.markDirty(ops[i].Addr)
			subOps = append(subOps, ops[i])
		}
		subRes = subRes[:0]
		subRes = append(subRes, make([]server.BatchWriteResult, len(subOps))...)
		for ri, st := range g.set {
			if !st.up.Load() {
				continue
			}
			err := r.doNodeCtx(st, trace, server.OpWriteBatch, ops[g.idxs[0]].Addr, func(c *server.TCPClient) error {
				if trace != 0 && r.tracedCap(st) {
					_, err := c.WriteBatchTraced(trace, subOps, subRes)
					return err
				}
				return c.WriteBatch(subOps, subRes)
			})
			if err != nil {
				continue // doNodeCtx already counted the error and marked health
			}
			accepted := uint64(0)
			for j, i := range g.idxs {
				if subRes[j].Err != nil {
					continue
				}
				accepted++
				if done[i] {
					continue
				}
				done[i] = true
				res[i] = subRes[j]
				if ri > 0 {
					// The primary never accepted this op; a replica did.
					r.failovers.Add(1)
				}
			}
			st.writes.Add(accepted)
		}
	}

	// Scalar fallback: any op no replica accepted retries through the
	// full per-op failover machinery before reporting failure.
	for i := range ops {
		if done[i] {
			continue
		}
		out, err := r.WriteTraced(trace, ops[i].Addr, ops[i].Line)
		if err != nil {
			res[i] = server.BatchWriteResult{Err: err}
			continue
		}
		res[i] = server.BatchWriteResult{Dedup: out.Dedup, PhysAddr: out.PhysAddr, LatencyNs: out.LatencyNs}
	}
	// The batch route event: Attempt carries the replica-set fan-out
	// (how many sub-batch frames the batch split into).
	r.hop(telemetry.HopRoute, trace, server.OpWriteBatch, "", ops[0].Addr, len(groups), 0, began)
	return nil
}

// ReadBatch routes a batch of reads, one sub-batch frame per distinct
// replica set, walking each set primary-first until every op in the
// group has an answer. Ops no replica answered fall back to scalar
// Read. The error return is non-nil only for caller mistakes; routing
// failures are reported per op in res[i].Err.
func (r *Router) ReadBatch(addrs []uint64, res []server.BatchReadResult) error {
	return r.ReadBatchTraced(r.NewTraceID(), addrs, res)
}

// ReadBatchTraced is ReadBatch under a caller-supplied trace ID (see
// WriteBatchTraced for the batch trace semantics).
func (r *Router) ReadBatchTraced(trace uint64, addrs []uint64, res []server.BatchReadResult) error {
	if len(res) != len(addrs) {
		return fmt.Errorf("cluster: results slice len %d != addrs len %d", len(res), len(addrs))
	}
	if len(addrs) == 0 {
		return nil
	}
	began := r.hopClock()
	done := make([]bool, len(addrs))
	groups := r.groupByReplicaSet(func(i int) uint64 { return addrs[i] }, len(addrs), false)
	subAddrs := make([]uint64, 0, len(addrs))
	subRes := make([]server.BatchReadResult, 0, len(addrs))
	for _, g := range groups {
		subAddrs = subAddrs[:0]
		for _, i := range g.idxs {
			subAddrs = append(subAddrs, addrs[i])
		}
		subRes = subRes[:0]
		subRes = append(subRes, make([]server.BatchReadResult, len(subAddrs))...)
		remaining := len(g.idxs)
		for ri, st := range g.set {
			if remaining == 0 {
				break
			}
			if !st.up.Load() {
				continue
			}
			err := r.doNodeCtx(st, trace, server.OpReadBatch, addrs[g.idxs[0]], func(c *server.TCPClient) error {
				if trace != 0 && r.tracedCap(st) {
					_, err := c.ReadBatchTraced(trace, subAddrs, subRes)
					return err
				}
				return c.ReadBatch(subAddrs, subRes)
			})
			if err != nil {
				continue
			}
			answered := uint64(0)
			for j, i := range g.idxs {
				if subRes[j].Err != nil {
					continue
				}
				answered++
				if done[i] {
					continue
				}
				done[i] = true
				remaining--
				res[i] = subRes[j]
				if ri > 0 {
					r.failovers.Add(1)
				}
			}
			st.reads.Add(answered)
		}
	}
	for i := range addrs {
		if done[i] {
			continue
		}
		out, err := r.ReadTraced(trace, addrs[i])
		if err != nil {
			res[i] = server.BatchReadResult{Err: err}
			continue
		}
		rr := server.BatchReadResult{Hit: out.Hit, LatencyNs: out.LatencyNs}
		copy(rr.Data[:], out.Data)
		res[i] = rr
	}
	r.hop(telemetry.HopRoute, trace, server.OpReadBatch, "", addrs[0], len(groups), 0, began)
	return nil
}
