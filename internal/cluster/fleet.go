package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/server"
)

// Fleet aggregation: the router is the one process that knows every
// member, so it is where the fleet-wide view lives. ClusterStatus scrapes
// each member's /statusz (serving state) and /debug/health (raw per-shard
// nvm.HealthSnapshot set), merges the health snapshots with
// nvm.MergeHealth — the same merge a single node applies across its own
// shards, applied one level up — and serves the result at
// /statusz/cluster for esdtop's -router mode.

// fleetScrapeTimeout bounds each member scrape; a wedged member costs one
// timeout, not a hung status page.
const fleetScrapeTimeout = 2 * time.Second

// MemberStatus is one member's row in the fleet view.
type MemberStatus struct {
	Name     string `json:"name"`
	HTTPAddr string `json:"http_addr,omitempty"`
	// Healthy is the router's live data-path view (probes + passive marks).
	Healthy bool `json:"healthy"`
	// Reachable reports whether the status scrape succeeded.
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
	// Status is the member's own /statusz document.
	Status *server.StatuszResponse `json:"status,omitempty"`
}

// ClusterStatus is the /statusz/cluster document: per-member serving
// state plus the fleet-merged device health.
type ClusterStatus struct {
	Members   []MemberStatus `json:"members"`
	Reachable int            `json:"reachable_members"`
	// Shards is the fleet-wide shard count (sum over reachable members).
	Shards int `json:"shards"`
	// Aggregates over reachable members' serving state.
	SlowRequests uint64  `json:"slow_requests"`
	Shed         uint64  `json:"shed_requests"`
	WritesPerS   float64 `json:"writes_per_s"`
	ReadsPerS    float64 `json:"reads_per_s"`
	// Device is the fleet-merged device view (nvm.MergeHealth over every
	// reachable member's per-shard snapshots).
	Device *server.DeviceStatus `json:"device,omitempty"`
	// WearHist is the fleet-merged wear histogram.
	WearHist []nvm.WearBucket `json:"wear_hist,omitempty"`
}

// ClusterStatus scrapes every tracked member concurrently and builds the
// fleet view. Members without an HTTP address, or whose scrape fails,
// appear with Reachable false; the aggregation runs over the rest.
func (s *Server) ClusterStatus() ClusterStatus {
	states := s.r.allStates()
	members := make([]MemberStatus, len(states))
	healths := make([][]nvm.HealthSnapshot, len(states))
	hc := &http.Client{Timeout: fleetScrapeTimeout}
	var wg sync.WaitGroup
	for i, st := range states {
		members[i] = MemberStatus{
			Name:     st.node.Name,
			HTTPAddr: st.node.HTTPAddr,
			Healthy:  st.up.Load(),
		}
		if st.node.HTTPAddr == "" {
			members[i].Error = "no http address"
			continue
		}
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			var status server.StatuszResponse
			if err := fleetGet(hc, base, "/statusz", &status); err != nil {
				members[i].Error = err.Error()
				return
			}
			members[i].Status = &status
			members[i].Reachable = true
			// Health scrape failure degrades the device merge, not the row.
			var snaps []nvm.HealthSnapshot
			if err := fleetGet(hc, base, "/debug/health", &snaps); err == nil {
				healths[i] = snaps
			}
		}(i, "http://"+st.node.HTTPAddr)
	}
	wg.Wait()

	out := ClusterStatus{Members: members}
	var all []nvm.HealthSnapshot
	var dedupSaved uint64
	var dedupRate, dedupWeight float64
	for i := range members {
		if !members[i].Reachable {
			continue
		}
		out.Reachable++
		st := members[i].Status
		out.Shards += st.Shards
		out.SlowRequests += st.SlowRequests
		out.Shed += st.Shed
		if st.Rates != nil {
			out.WritesPerS += st.Rates.WritesPerS
			out.ReadsPerS += st.Rates.ReadsPerS
		}
		if st.Device != nil {
			dedupSaved += st.Device.BytesSaved
			w := float64(st.Device.MediaWrites)
			dedupRate += st.Device.DedupHitRate * w
			dedupWeight += w
		}
		all = append(all, healths[i]...)
	}
	if len(all) > 0 {
		merged := nvm.MergeHealth(all)
		out.Device = &server.DeviceStatus{
			MediaReads:    merged.Reads,
			MediaWrites:   merged.Writes,
			MaxWear:       merged.MaxWear,
			MeanWear:      merged.MeanWear(),
			P99Wear:       merged.P99Wear,
			WearSkew:      merged.WearSkew(),
			EnergyReadNJ:  merged.ReadEnergyNJ,
			EnergyWriteNJ: merged.WriteEnergyNJ,
			BytesSaved:    dedupSaved,
		}
		if dedupWeight > 0 {
			out.Device.DedupHitRate = dedupRate / dedupWeight
		}
		out.WearHist = merged.WearHist
	}
	return out
}

// fleetGet fetches base+path and decodes the JSON body into out.
func fleetGet(hc *http.Client, base, path string, out interface{}) error {
	resp, err := hc.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
