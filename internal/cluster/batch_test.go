package cluster

import (
	"testing"

	"github.com/esdsim/esd/internal/server"
)

// routerWriteBatch batch-writes lineFor(addr+salt) to every addr and
// fails the test on any per-op error.
func routerWriteBatch(t *testing.T, r *Router, addrs []uint64, salt uint64) {
	t.Helper()
	ops := make([]server.BatchWriteOp, len(addrs))
	res := make([]server.BatchWriteResult, len(addrs))
	for i, a := range addrs {
		ops[i] = server.BatchWriteOp{Addr: a, Line: lineFor(a + salt)}
	}
	if err := r.WriteBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("batch write op %d (addr %d): %v", i, addrs[i], res[i].Err)
		}
	}
}

func addrRange(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo)
	for a := lo; a < hi; a++ {
		out = append(out, a)
	}
	return out
}

// TestRouterBatchReplicatesAndReadsBack routes batched writes over a
// replicated 3-node ring and reads everything back batched — including
// after a node loss, where the follower replicas must absorb the batch.
func TestRouterBatchReplicatesAndReadsBack(t *testing.T) {
	backends, r := startCluster(t, 3, Config{Replication: 2})
	const space = 192
	for lo := uint64(0); lo < space; lo += 64 {
		routerWriteBatch(t, r, addrRange(lo, lo+64), 0)
	}

	verify := func(stage string) {
		t.Helper()
		addrs := addrRange(0, space+8) // last 8 were never written
		res := make([]server.BatchReadResult, len(addrs))
		if err := r.ReadBatch(addrs, res); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		for i, a := range addrs {
			if res[i].Err != nil {
				t.Fatalf("%s: read %d: %v", stage, a, res[i].Err)
			}
			if a >= space {
				if res[i].Hit {
					t.Fatalf("%s: read %d hit despite never being written", stage, a)
				}
				continue
			}
			if !res[i].Hit {
				t.Fatalf("%s: read %d missed", stage, a)
			}
			if want := lineFor(a); res[i].Data != want {
				t.Fatalf("%s: read %d wrong bytes", stage, a)
			}
		}
	}
	verify("all nodes up")

	// One node down: every address still has a live replica, so batched
	// reads and writes must both keep answering (sub-batches re-routed
	// to the surviving replicas, per-op fallback for stragglers).
	backends[1].kill(t)
	verify("one node down")
	for lo := uint64(0); lo < space; lo += 64 {
		routerWriteBatch(t, r, addrRange(lo, lo+64), 1000)
	}
	addrs := addrRange(0, space)
	res := make([]server.BatchReadResult, len(addrs))
	if err := r.ReadBatch(addrs, res); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if res[i].Err != nil || !res[i].Hit {
			t.Fatalf("read %d after degraded batch write: err=%v hit=%v", a, res[i].Err, res[i].Hit)
		}
		if want := lineFor(a + 1000); res[i].Data != want {
			t.Fatalf("read %d after degraded batch write: wrong bytes", a)
		}
	}
}

// TestRouterBatchValidation checks the caller-mistake guards.
func TestRouterBatchValidation(t *testing.T) {
	_, r := startCluster(t, 2, Config{})
	if err := r.WriteBatch(make([]server.BatchWriteOp, 2), make([]server.BatchWriteResult, 1)); err == nil {
		t.Fatal("mismatched write results slice accepted")
	}
	if err := r.ReadBatch(make([]uint64, 2), make([]server.BatchReadResult, 3)); err == nil {
		t.Fatal("mismatched read results slice accepted")
	}
	if err := r.WriteBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestClusterBatchAcrossReshard keeps batched writes flowing while the
// ring grows. Writes issued mid-migration take the scalar dual-write
// fallback (dirty tracking intact), so after the cutover the last
// batch-written content must win over the replayed snapshot.
func TestClusterBatchAcrossReshard(t *testing.T) {
	_, r := startCluster(t, 3, Config{})
	const space = 256
	const window = 32 // the contended window rewritten during migration
	for lo := uint64(0); lo < space; lo += 64 {
		routerWriteBatch(t, r, addrRange(lo, lo+64), 0)
	}

	added := startBackend(t, "node3")
	newNodes := append(append([]Node{}, r.Ring().Nodes()...), added.node)

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		ops := make([]server.BatchWriteOp, window)
		res := make([]server.BatchWriteResult, window)
		salt := uint64(1)
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			for i := range ops {
				ops[i].Addr = uint64(i)
				ops[i].Line = lineFor(uint64(i) + salt*10000)
			}
			if err := r.WriteBatch(ops, res); err != nil {
				done <- err
				return
			}
			for i := range res {
				if res[i].Err != nil {
					done <- res[i].Err
					return
				}
			}
			salt++
		}
	}()

	rep, err := r.Reshard(newNodes, space)
	close(stop)
	if werr := <-done; werr != nil {
		t.Fatalf("batch write during reshard: %v", werr)
	}
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if rep.ToEpoch != 2 {
		t.Fatalf("reshard epoch %d, want 2", rep.ToEpoch)
	}

	// Settle the contended window with one final post-cutover batch so
	// its expected content is known, then batch-read the whole space
	// through the new ring.
	routerWriteBatch(t, r, addrRange(0, window), 555555)
	addrs := addrRange(0, space)
	res := make([]server.BatchReadResult, len(addrs))
	if err := r.ReadBatch(addrs, res); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if res[i].Err != nil || !res[i].Hit {
			t.Fatalf("read %d after reshard: err=%v hit=%v", a, res[i].Err, res[i].Hit)
		}
		want := lineFor(a)
		if a < window {
			want = lineFor(a + 555555)
		}
		if res[i].Data != want {
			t.Fatalf("read %d after reshard: wrong bytes (migration clobbered a batched write?)", a)
		}
	}
}

// TestClusterServerBatchFrames drives the batched wire frames through
// the cluster front-end with a stock TCPClient: same protocol, router
// execution.
func TestClusterServerBatchFrames(t *testing.T) {
	_, _, s := startClusterServer(t, 2, Config{Replication: 2})
	c, err := server.DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 48
	ops := make([]server.BatchWriteOp, n)
	res := make([]server.BatchWriteResult, n)
	for i := range ops {
		ops[i] = server.BatchWriteOp{Addr: uint64(i), Line: lineFor(uint64(i % 6))}
	}
	if err := c.WriteBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
	}

	addrs := make([]uint64, n+2)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	rres := make([]server.BatchReadResult, n+2)
	if err := c.ReadBatch(addrs, rres); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if rres[i].Err != nil || !rres[i].Hit {
			t.Fatalf("read %d: err=%v hit=%v", i, rres[i].Err, rres[i].Hit)
		}
		if want := lineFor(uint64(i % 6)); rres[i].Data != want {
			t.Fatalf("read %d: wrong bytes", i)
		}
	}
	for i := n; i < n+2; i++ {
		if rres[i].Err != nil || rres[i].Hit {
			t.Fatalf("read %d (never written): err=%v hit=%v", i, rres[i].Err, rres[i].Hit)
		}
	}

	// Zero-count batches complete OK and leave the connection usable.
	if err := c.WriteBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(1, lineFor(1)); err != nil {
		t.Fatal(err)
	}
}
