package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/server"
	"github.com/esdsim/esd/internal/telemetry"
)

// ServeConfig parameterizes a cluster Server.
type ServeConfig struct {
	// TCPAddr is the binary-protocol data-path listen address (":0"
	// picks a free port).
	TCPAddr string
	// HTTPAddr, when non-empty, serves /healthz, /readyz, /statusz and
	// the /admin/reshard endpoint.
	HTTPAddr string
}

// Server fronts a Router with the same binary TCP protocol esdserve
// speaks, so esdload (and any protocol client) talks to a cluster
// exactly as it talks to one node, plus an HTTP introspection surface
// whose /statusz carries the ring section.
type Server struct {
	r *Router

	tcpLn  net.Listener
	httpLn net.Listener
	httpSr *http.Server

	inflight sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	draining chan struct{}
	drainMu  sync.Once
	start    time.Time
}

// NewServer listens and starts serving the router. The router's
// lifetime stays with the caller: Shutdown stops the listeners but does
// not Close the router.
func NewServer(r *Router, cfg ServeConfig) (*Server, error) {
	s := &Server{
		r:        r,
		conns:    make(map[net.Conn]struct{}),
		draining: make(chan struct{}),
		start:    time.Now(),
	}
	ln, err := net.Listen("tcp", cfg.TCPAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen tcp %s: %w", cfg.TCPAddr, err)
	}
	s.tcpLn = ln
	go s.acceptTCP()
	if cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			_ = ln.Close()
			return nil, fmt.Errorf("cluster: listen http %s: %w", cfg.HTTPAddr, err)
		}
		s.httpLn = hln
		s.httpSr = &http.Server{Handler: s.mux(), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = s.httpSr.Serve(hln) }()
	}
	return s, nil
}

// TCPAddr returns the bound data-path address.
func (s *Server) TCPAddr() string { return s.tcpLn.Addr().String() }

// HTTPAddr returns the bound introspection address ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Ready reports readiness: serving and at least one healthy node.
func (s *Server) Ready() bool {
	select {
	case <-s.draining:
		return false
	default:
	}
	return s.r.HealthyNodes() > 0
}

// Shutdown stops accepting, finishes in-flight frames and closes the
// listeners. On ctx expiry remaining connections are cut.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Do(func() { close(s.draining) })
	var firstErr error
	_ = s.tcpLn.Close()
	if s.httpSr != nil {
		if err := s.httpSr.Shutdown(ctx); err != nil {
			firstErr = err
			_ = s.httpSr.Close()
		}
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connMu.Unlock()
		<-done
		if firstErr == nil {
			firstErr = ctx.Err()
		}
	}
	return firstErr
}

func (s *Server) acceptTCP() {
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return
		}
		select {
		case <-s.draining:
			_ = conn.Close()
			continue
		default:
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.inflight.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		_ = conn.Close()
		s.inflight.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var op [1]byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if err := readFull(br, op[:]); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				select {
				case <-s.draining:
					return
				default:
					continue
				}
			}
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if !s.serveFrame(br, bw, op[0]) {
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// serveFrame proxies one protocol frame through the router. The wire
// format is identical to internal/server's (proto.go); only the
// execution differs — the router fans the op out to the owning nodes.
// The router is the cluster's trace originator: version-0 frames get a
// freshly minted fleet ID (invisible to the client but present in every
// log and recorder the request touches), version-1 traced frames adopt
// the client's ID and echo it back.
func (s *Server) serveFrame(br *bufio.Reader, bw *bufio.Writer, op byte) bool {
	traced := false
	var trace uint64
	switch op {
	case server.OpHello, server.OpWriteTr, server.OpReadTr, server.OpWriteBatchTr, server.OpReadBatchTr:
		if op == server.OpHello {
			var ver [1]byte
			if readFull(br, ver[:]) != nil {
				return false
			}
			var resp [2]byte
			resp[0] = server.StatusOK
			resp[1] = server.ProtoVersion
			_, werr := bw.Write(resp[:])
			return werr == nil
		}
		// Peek+Discard keeps the preamble read allocation-free (the bytes
		// come straight out of bufio's buffer).
		tb, err := br.Peek(8)
		if err != nil {
			return false
		}
		trace = binary.LittleEndian.Uint64(tb)
		if _, err := br.Discard(8); err != nil {
			return false
		}
		traced = true
	}

	switch op {
	case server.OpWrite, server.OpWriteTr:
		var req [8 + ecc.LineSize]byte
		if readFull(br, req[:]) != nil {
			return false
		}
		var line ecc.Line
		copy(line[:], req[8:])
		addr := binary.LittleEndian.Uint64(req[:8])
		if !traced {
			trace = s.r.NewTraceID()
		}
		out, err := s.r.WriteTraced(trace, addr, line)
		if err != nil {
			return writeStatus(bw, errStatus(err))
		}
		var resp [1 + 1 + 8 + 8 + 8]byte
		resp[0] = server.StatusOK
		if out.Dedup {
			resp[1] = 1
		}
		binary.LittleEndian.PutUint64(resp[2:], out.PhysAddr)
		binary.LittleEndian.PutUint64(resp[10:], uint64(out.LatencyNs))
		n := 1 + 1 + 8 + 8
		if traced {
			binary.LittleEndian.PutUint64(resp[n:], trace)
			n += 8
		}
		_, werr := bw.Write(resp[:n])
		return werr == nil
	case server.OpRead, server.OpReadTr:
		var req [8]byte
		if readFull(br, req[:]) != nil {
			return false
		}
		addr := binary.LittleEndian.Uint64(req[:])
		if !traced {
			trace = s.r.NewTraceID()
		}
		res, err := s.r.ReadTraced(trace, addr)
		if err != nil {
			return writeStatus(bw, errStatus(err))
		}
		var resp [1 + 1 + ecc.LineSize + 8 + 8]byte
		resp[0] = server.StatusOK
		if res.Hit {
			resp[1] = 1
		}
		copy(resp[2:], res.Data)
		binary.LittleEndian.PutUint64(resp[2+ecc.LineSize:], uint64(res.LatencyNs))
		n := 1 + 1 + ecc.LineSize + 8
		if traced {
			binary.LittleEndian.PutUint64(resp[n:], trace)
			n += 8
		}
		_, werr := bw.Write(resp[:n])
		return werr == nil
	case server.OpWriteBatch, server.OpWriteBatchTr:
		var cnt [2]byte
		if readFull(br, cnt[:]) != nil {
			return false
		}
		n := int(binary.LittleEndian.Uint16(cnt[:]))
		if n > server.MaxBatchOps {
			// Malformed: the body was never read, so the stream position
			// is unknown. Flush the status, then drop the connection.
			writeStatus(bw, server.StatusBadRequest)
			_ = bw.Flush()
			return false
		}
		if n == 0 {
			return s.writeBatchHead(bw, 0, traced, trace)
		}
		ops := make([]server.BatchWriteOp, n)
		var wreq [8 + ecc.LineSize]byte
		for i := 0; i < n; i++ {
			if readFull(br, wreq[:]) != nil {
				return false
			}
			ops[i].Addr = binary.LittleEndian.Uint64(wreq[:8])
			copy(ops[i].Line[:], wreq[8:])
		}
		if !traced {
			trace = s.r.NewTraceID()
		}
		bres := make([]server.BatchWriteResult, n)
		if err := s.r.WriteBatchTraced(trace, ops, bres); err != nil {
			return writeStatus(bw, errStatus(err))
		}
		if !s.writeBatchHead(bw, n, traced, trace) {
			return false
		}
		for i := 0; i < n; i++ {
			var rec [1 + 1 + 8 + 8]byte
			if bres[i].Err != nil {
				rec[0] = errStatus(bres[i].Err)
			} else {
				rec[0] = server.StatusOK
				if bres[i].Dedup {
					rec[1] = 1
				}
				binary.LittleEndian.PutUint64(rec[2:], bres[i].PhysAddr)
				binary.LittleEndian.PutUint64(rec[10:], uint64(bres[i].LatencyNs))
			}
			if _, err := bw.Write(rec[:]); err != nil {
				return false
			}
		}
		return true
	case server.OpReadBatch, server.OpReadBatchTr:
		var cnt [2]byte
		if readFull(br, cnt[:]) != nil {
			return false
		}
		n := int(binary.LittleEndian.Uint16(cnt[:]))
		if n > server.MaxBatchOps {
			writeStatus(bw, server.StatusBadRequest)
			_ = bw.Flush()
			return false
		}
		if n == 0 {
			return s.writeBatchHead(bw, 0, traced, trace)
		}
		addrs := make([]uint64, n)
		var rreq [8]byte
		for i := 0; i < n; i++ {
			if readFull(br, rreq[:]) != nil {
				return false
			}
			addrs[i] = binary.LittleEndian.Uint64(rreq[:])
		}
		if !traced {
			trace = s.r.NewTraceID()
		}
		bres := make([]server.BatchReadResult, n)
		if err := s.r.ReadBatchTraced(trace, addrs, bres); err != nil {
			return writeStatus(bw, errStatus(err))
		}
		if !s.writeBatchHead(bw, n, traced, trace) {
			return false
		}
		for i := 0; i < n; i++ {
			var rec [1 + 1 + ecc.LineSize + 8]byte
			if bres[i].Err != nil {
				rec[0] = errStatus(bres[i].Err)
			} else {
				rec[0] = server.StatusOK
				if bres[i].Hit {
					rec[1] = 1
				}
				copy(rec[2:], bres[i].Data[:])
				binary.LittleEndian.PutUint64(rec[2+ecc.LineSize:], uint64(bres[i].LatencyNs))
			}
			if _, err := bw.Write(rec[:]); err != nil {
				return false
			}
		}
		return true
	case server.OpFlush:
		if err := s.r.Flush(); err != nil {
			return writeStatus(bw, errStatus(err))
		}
		return writeStatus(bw, server.StatusOK)
	case server.OpStats:
		sum, err := s.r.Stats()
		if err != nil {
			return writeStatus(bw, errStatus(err))
		}
		payload, err := json.Marshal(sum)
		if err != nil {
			return writeStatus(bw, server.StatusBadRequest)
		}
		var head [5]byte
		head[0] = server.StatusOK
		binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
		if _, err := bw.Write(head[:]); err != nil {
			return false
		}
		_, werr := bw.Write(payload)
		return werr == nil
	default:
		return writeStatus(bw, server.StatusBadRequest)
	}
}

// writeBatchHead emits a batch response head: status, count, and — for
// traced frames — the echoed trace ID.
func (s *Server) writeBatchHead(bw *bufio.Writer, n int, traced bool, trace uint64) bool {
	var head [3 + 8]byte
	head[0] = server.StatusOK
	binary.LittleEndian.PutUint16(head[1:], uint16(n))
	k := 3
	if traced {
		binary.LittleEndian.PutUint64(head[k:], trace)
		k += 8
	}
	_, err := bw.Write(head[:k])
	return err == nil
}

// errStatus maps router errors onto protocol statuses. A replica-level
// flow-control error that survived the retry budget keeps its own
// status; total routing failure is StatusUnavailable.
func errStatus(err error) byte {
	switch {
	case errors.Is(err, ErrNoReplica):
		return server.StatusUnavailable
	case errors.Is(err, server.ErrOverloaded):
		return server.StatusOverloaded
	case errors.Is(err, server.ErrTimeout):
		return server.StatusTimeout
	case errors.Is(err, server.ErrClosing):
		return server.StatusClosing
	default:
		return server.StatusBadRequest
	}
}

func writeStatus(bw *bufio.Writer, st byte) bool {
	return bw.WriteByte(st) == nil
}

func readFull(r io.Reader, b []byte) error {
	_, err := io.ReadFull(r, b)
	return err
}

// NodeStatus is one backend's row in the /statusz ring section.
type NodeStatus struct {
	Name      string `json:"name"`
	TCPAddr   string `json:"tcp_addr"`
	HTTPAddr  string `json:"http_addr,omitempty"`
	Healthy   bool   `json:"healthy"`
	Writes    uint64 `json:"writes"`
	Reads     uint64 `json:"reads"`
	Errors    uint64 `json:"errors"`
	ProbeErrs uint64 `json:"probe_errors"`
}

// Status is the router's /statusz document: the ring section plus the
// routing budgets and counters, and — when tracing is on — the per-hop
// latency section (route, attempt, checkout, retry, hedge, ...) mirroring
// the per-stage section a node's /statusz carries.
type Status struct {
	Epoch         uint64                        `json:"epoch"`
	VNodes        int                           `json:"vnodes"`
	Replication   int                           `json:"replication"`
	Nodes         []NodeStatus                  `json:"nodes"`
	Healthy       int                           `json:"healthy_nodes"`
	Resharding    bool                          `json:"resharding"`
	LastReshard   *ReshardReport                `json:"last_reshard,omitempty"`
	Retries       uint64                        `json:"retries"`
	Failovers     uint64                        `json:"failovers"`
	Hedges        uint64                        `json:"hedges"`
	ReadRepairs   uint64                        `json:"read_repairs"`
	UptimeS       float64                       `json:"uptime_s"`
	Tracing       bool                          `json:"tracing"`
	FlightRecords int                           `json:"flight_records,omitempty"`
	Hops          map[string]server.StageStatus `json:"hops,omitempty"`
}

// Status builds the live router status document.
func (s *Server) Status() Status {
	r := s.r
	ring := r.Ring()
	st := Status{
		Epoch:       ring.Epoch(),
		VNodes:      ring.VNodes(),
		Replication: r.cfg.Replication,
		Resharding:  r.Resharding(),
		LastReshard: r.LastReshard(),
		Retries:     r.retries.Load(),
		Failovers:   r.failovers.Load(),
		Hedges:      r.hedges.Load(),
		ReadRepairs: r.repairs.Load(),
		UptimeS:     time.Since(s.start).Seconds(),
	}
	for _, ns := range r.allStates() {
		row := NodeStatus{
			Name:      ns.node.Name,
			TCPAddr:   ns.node.TCPAddr,
			HTTPAddr:  ns.node.HTTPAddr,
			Healthy:   ns.up.Load(),
			Writes:    ns.writes.Load(),
			Reads:     ns.reads.Load(),
			Errors:    ns.errs.Load(),
			ProbeErrs: ns.probeErrs.Load(),
		}
		if row.Healthy {
			st.Healthy++
		}
		st.Nodes = append(st.Nodes, row)
	}
	st.Tracing = r.TracingEnabled()
	if hists, ok := r.HopSnapshot(); ok {
		st.FlightRecords = len(r.HopRecords())
		st.Hops = make(map[string]server.StageStatus, len(hists))
		for i := range hists {
			h := &hists[i]
			if h.Count() == 0 {
				continue
			}
			st.Hops[telemetry.Hop(i).String()] = server.StageStatus{
				Count:  h.Count(),
				MeanNs: h.Mean().Nanoseconds(),
				P50Ns:  h.Percentile(0.5).Nanoseconds(),
				P99Ns:  h.Percentile(0.99).Nanoseconds(),
			}
		}
	}
	return st
}

func (s *Server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		if !s.Ready() {
			http.Error(w, "no healthy backend", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, s.Status())
	})
	mux.HandleFunc("/statusz/cluster", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, s.ClusterStatus())
	})
	// The router flight recorder: attempt-level hop events with trace IDs,
	// the cross-node half of what esdtrace stitches against each node's
	// /debug/flightrecorder.
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		recs := s.r.HopRecords()
		if recs == nil {
			recs = []telemetry.HopRecord{}
		}
		writeJSON(w, recs)
	})
	mux.HandleFunc("/admin/reshard", s.handleReshard)
	return mux
}

// ReshardRequest is the /admin/reshard POST body: a membership delta
// plus the address-space bound to scan.
type ReshardRequest struct {
	Add    []Node   `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
	Space  uint64   `json:"space"`
}

func (s *Server) handleReshard(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body ReshardRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Space == 0 {
		http.Error(w, "space must be positive (the scanned logical address bound)", http.StatusBadRequest)
		return
	}
	if len(body.Add) == 0 && len(body.Remove) == 0 {
		http.Error(w, "nothing to do: empty add and remove", http.StatusBadRequest)
		return
	}
	nodes, err := s.r.reshardNodes(body.Add, body.Remove)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep, err := s.r.Reshard(nodes, body.Space)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, rep)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(v)
}
