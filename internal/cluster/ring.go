// Package cluster scales the serving stack past one machine: a stateless
// router consistent-hashes logical line addresses over N backend esdserve
// nodes and speaks the existing binary TCP protocol to them, with
// per-node health probing (/readyz), bounded retry/failover/hedging
// budgets, optional R=2 replication with read repair, and live
// resharding (snapshot + replay + epoch flip) when the node set changes.
//
// Address-partitioned routing deliberately mirrors the single-machine
// sharding story (DESIGN.md §7): a logical address has exactly one home
// node per ring epoch, so dedup locality — the paper's per-region
// selective dedup — is preserved per node and no cross-node coordination
// exists on the data path. The router keeps no durable state of its own:
// everything it knows is reconstructed from its node list and live
// probes, so any number of routers can front the same node set.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Node identifies one backend esdserve process.
type Node struct {
	// Name is the stable identity used for ring placement; it defaults to
	// TCPAddr. Renaming a node moves its ring ranges.
	Name string `json:"name"`
	// TCPAddr is the binary-protocol data-path address.
	TCPAddr string `json:"tcp_addr"`
	// HTTPAddr, when non-empty, is probed at /readyz for health; when
	// empty the prober falls back to TCP dial probes.
	HTTPAddr string `json:"http_addr,omitempty"`
}

func (n Node) String() string { return n.Name }

// withDefaults fills Name from TCPAddr.
func (n Node) withDefaults() Node {
	if n.Name == "" {
		n.Name = n.TCPAddr
	}
	return n
}

// Ring is an immutable consistent-hash ring: each node contributes
// VNodes virtual points, and a logical address is owned by the first
// point at or after its hash (wrapping). Replicas are the first R
// distinct nodes clockwise from that point, so losing a node sheds its
// ranges onto ring successors instead of rehashing the world — the
// property that makes both failover and resharding incremental.
type Ring struct {
	nodes  []Node
	vnodes int
	points []ringPoint // sorted by hash
	epoch  uint64
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVNodes is the default virtual-node count per node: enough that
// a 3-node ring splits within a few percent of evenly.
const DefaultVNodes = 64

// NewRing builds a ring of nodes with vnodes virtual points per node
// (DefaultVNodes when <= 0) at the given epoch. Node names must be
// unique.
func NewRing(nodes []Node, vnodes int, epoch uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, epoch: epoch}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		n = n.withDefaults()
		if n.TCPAddr == "" {
			return nil, fmt.Errorf("cluster: node %q has no TCP address", n.Name)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		r.nodes = append(r.nodes, n)
	}
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n.Name, v), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// pointHash places virtual point v of the named node on the ring. The
// FNV sum of short similar strings clusters, so it is passed through the
// same finalizer as addrHash to spread points uniformly.
func pointHash(name string, v int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{'#', byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return addrHash(h.Sum64())
}

// addrHash maps a logical line address onto the ring (splitmix64
// finalizer: cheap, well-mixed, and independent of the shard-striping
// modulus the backends use internally).
func addrHash(addr uint64) uint64 {
	x := addr + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Epoch returns the ring's configuration epoch (bumped by each reshard).
func (r *Ring) Epoch() uint64 { return r.epoch }

// VNodes returns the virtual points per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Nodes returns the member nodes (do not mutate).
func (r *Ring) Nodes() []Node { return r.nodes }

// Node returns the i'th member.
func (r *Ring) Node(i int) Node { return r.nodes[i] }

// NodeByName finds a member by name.
func (r *Ring) NodeByName(name string) (Node, bool) {
	for _, n := range r.nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// ReplicasInto writes the indices of the first min(want, len(nodes))
// distinct nodes clockwise from addr's ring position into buf (the
// replica set: buf[0] is the primary) and returns how many it wrote. It
// allocates nothing, keeping the per-request routing path cheap.
func (r *Ring) ReplicasInto(addr uint64, want int, buf []int) int {
	if want > len(r.nodes) {
		want = len(r.nodes)
	}
	if want > len(buf) {
		want = len(buf)
	}
	h := addrHash(addr)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	n := 0
	for i := 0; i < len(r.points) && n < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for j := 0; j < n; j++ {
			if buf[j] == p.node {
				dup = true
				break
			}
		}
		if !dup {
			buf[n] = p.node
			n++
		}
	}
	return n
}

// Owner returns addr's primary node.
func (r *Ring) Owner(addr uint64) Node {
	var buf [1]int
	r.ReplicasInto(addr, 1, buf[:])
	return r.nodes[buf[0]]
}
