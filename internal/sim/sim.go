// Package sim provides a small deterministic discrete-event simulation
// kernel used to drive the NVMM system model.
//
// Time is measured in integer picoseconds so that sub-nanosecond device
// parameters (SRAM probes, bus transfers) never lose precision to rounding.
// Helper constants make construction readable: 75*sim.Nanosecond.
//
// The kernel is intentionally single-threaded: events execute in strictly
// non-decreasing time order, with FIFO ordering among events scheduled for
// the same instant, so simulations are bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Duration units.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Event is a scheduled callback. The callback receives the kernel so it can
// schedule follow-up events.
type Event struct {
	at   Time
	seq  uint64
	fire func(*Kernel)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the event loop. The zero value is ready to use.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fire to run at absolute time at. Scheduling in the past
// panics: it indicates a causality bug in the model.
func (k *Kernel) At(at Time, fire func(*Kernel)) {
	if at < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", at, k.now))
	}
	k.seq++
	heap.Push(&k.events, &Event{at: at, seq: k.seq, fire: fire})
}

// After schedules fire to run d after the current time.
func (k *Kernel) After(d Time, fire func(*Kernel)) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fire)
}

// Every schedules fire to run periodically with the given period, starting
// one period from now, until the kernel drains or stop returns true.
func (k *Kernel) Every(period Time, fire func(*Kernel) (stop bool)) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	var tick func(*Kernel)
	tick = func(kk *Kernel) {
		if fire(kk) {
			return
		}
		kk.After(period, tick)
	}
	k.After(period, tick)
}

// Step executes the next event, if any, and reports whether one ran.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	k.now = e.at
	e.fire(k)
	return true
}

// Run executes events until none remain.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled beyond the deadline stay pending.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Resource models a single server that processes reservations back to back,
// e.g. one NVM bank or a hash unit. Reservations are not preemptible.
type Resource struct {
	// FreeAt is the earliest time the resource can begin a new reservation.
	FreeAt Time
	// Busy accumulates total occupied time, for utilization accounting.
	Busy Time
}

// Reserve books the resource for dur starting no earlier than at, and
// returns the reservation's start and end times. The queueing delay
// experienced by the caller is start - at.
func (r *Resource) Reserve(at Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative reservation %v", dur))
	}
	start = at
	if r.FreeAt > start {
		start = r.FreeAt
	}
	end = start + dur
	r.FreeAt = end
	r.Busy += dur
	return start, end
}

// Utilization reports the fraction of [0, horizon] the resource was busy.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(r.Busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}
