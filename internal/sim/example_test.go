package sim_test

import (
	"fmt"

	"github.com/esdsim/esd/internal/sim"
)

// A resource serializes reservations: the second request queues behind the
// first, exactly how a PCM bank or a hash unit behaves.
func ExampleResource_Reserve() {
	var hashUnit sim.Resource

	start1, end1 := hashUnit.Reserve(0, 321*sim.Nanosecond)
	start2, _ := hashUnit.Reserve(10*sim.Nanosecond, 321*sim.Nanosecond)

	fmt.Println(start1, end1)
	fmt.Println("second waits:", start2-10*sim.Nanosecond)
	// Output:
	// 0ps 321ns
	// second waits: 311ns
}

// The kernel runs events in time order with deterministic FIFO ties.
func ExampleKernel() {
	k := sim.NewKernel()
	k.At(20*sim.Nanosecond, func(*sim.Kernel) { fmt.Println("second") })
	k.At(10*sim.Nanosecond, func(kk *sim.Kernel) {
		fmt.Println("first at", kk.Now())
	})
	k.Run()
	// Output:
	// first at 10ns
	// second
}
