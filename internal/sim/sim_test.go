package sim

import (
	"testing"
	"testing/quick"

	"github.com/esdsim/esd/internal/xrand/quicktest"
)

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:  "500ps",
		75 * Nanosecond:   "75ns",
		2 * Microsecond:   "2us",
		15 * Millisecond:  "15ms",
		3 * Second:        "3s",
		1500 * Nanosecond: "1.5us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestKernelRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30*Nanosecond, func(*Kernel) { order = append(order, 3) })
	k.At(10*Nanosecond, func(*Kernel) { order = append(order, 1) })
	k.At(20*Nanosecond, func(*Kernel) { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v", order)
	}
	if k.Now() != 30*Nanosecond {
		t.Fatalf("final time %v, want 30ns", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*Nanosecond, func(*Kernel) { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of scheduling order: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.At(10, func(kk *Kernel) {
		times = append(times, kk.Now())
		kk.After(5, func(kk2 *Kernel) {
			times = append(times, kk2.Now())
		})
	})
	k.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested event times %v", times)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func(kk *Kernel) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		kk.At(50, func(*Kernel) {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	NewKernel().After(-1, func(*Kernel) {})
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10, func(*Kernel) { ran++ })
	k.At(20, func(*Kernel) { ran++ })
	k.At(30, func(*Kernel) { ran++ })
	k.RunUntil(20)
	if ran != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %v after RunUntil(20)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	k.Run()
	if ran != 3 {
		t.Fatalf("Run() after RunUntil: ran = %d, want 3", ran)
	}
}

func TestEveryRunsPeriodicallyAndStops(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	k.Every(10, func(kk *Kernel) bool {
		ticks = append(ticks, kk.Now())
		return len(ticks) >= 4
	})
	k.Run()
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestResourceBackToBackReservations(t *testing.T) {
	var r Resource
	start, end := r.Reserve(0, 75)
	if start != 0 || end != 75 {
		t.Fatalf("first reservation = [%v, %v]", start, end)
	}
	// A request arriving while busy queues.
	start, end = r.Reserve(10, 75)
	if start != 75 || end != 150 {
		t.Fatalf("queued reservation = [%v, %v], want [75, 150]", start, end)
	}
	// A request arriving after the resource is free starts immediately.
	start, end = r.Reserve(500, 75)
	if start != 500 || end != 575 {
		t.Fatalf("idle reservation = [%v, %v], want [500, 575]", start, end)
	}
	if r.Busy != 225 {
		t.Fatalf("busy time = %v, want 225", r.Busy)
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Reserve(0, 100)
	r.Reserve(0, 100)
	if u := r.Utilization(400); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(100); u != 1 {
		t.Fatalf("utilization clamps at 1, got %v", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("utilization with zero horizon = %v", u)
	}
}

func TestResourceReservationNeverOverlaps(t *testing.T) {
	check := func(arrivals []uint16, durs []uint8) bool {
		var r Resource
		var lastEnd Time
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		at := Time(0)
		for i := 0; i < n; i++ {
			at += Time(arrivals[i] % 100)
			start, end := r.Reserve(at, Time(durs[i]%50)+1)
			if start < at || start < lastEnd || end != start+Time(durs[i]%50)+1 {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(check, quicktest.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestKernelMassiveEventLoad(t *testing.T) {
	k := NewKernel()
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		k.At(Time(n-i), func(*Kernel) { count++ })
	}
	k.Run()
	if count != n {
		t.Fatalf("ran %d events, want %d", count, n)
	}
}

func BenchmarkKernelScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			k.At(Time(j%97), func(*Kernel) {})
		}
		k.Run()
	}
}
