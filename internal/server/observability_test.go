package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/telemetry"
)

// syncBuf is an io.Writer safe to read from the test goroutine while the
// server's handlers are still writing slow-request lines.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestObservabilityEndpointsFresh checks every introspection endpoint on
// a server that has served no traffic: all must answer well-formed
// responses (the flight recorder as an empty-but-valid JSON array, the
// status document without stage histograms).
func TestObservabilityEndpointsFresh(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2, Tracing: true}, Config{})
	cases := []struct {
		path     string
		wantCode int
		check    func(t *testing.T, body string)
	}{
		{"/healthz", http.StatusOK, func(t *testing.T, body string) {
			if strings.TrimSpace(body) != "ok" {
				t.Errorf("healthz body = %q", body)
			}
		}},
		{"/readyz", http.StatusOK, func(t *testing.T, body string) {
			if strings.TrimSpace(body) != "ready" {
				t.Errorf("readyz body = %q", body)
			}
		}},
		{"/statusz", http.StatusOK, func(t *testing.T, body string) {
			var st StatuszResponse
			if err := json.Unmarshal([]byte(body), &st); err != nil {
				t.Fatalf("statusz not JSON: %v\n%s", err, body)
			}
			if !st.Ready || st.Shards != 2 || !st.Tracing {
				t.Errorf("statusz = %+v, want ready, 2 shards, tracing", st)
			}
			if len(st.QueueDepths) != 2 || st.QueueCap <= 0 {
				t.Errorf("queue depths %v cap %d", st.QueueDepths, st.QueueCap)
			}
			if len(st.Stages) != 0 {
				t.Errorf("fresh server has stage data: %v", st.Stages)
			}
		}},
		{"/debug/flightrecorder", http.StatusOK, func(t *testing.T, body string) {
			var recs []telemetry.FlightRecord
			if err := json.Unmarshal([]byte(body), &recs); err != nil {
				t.Fatalf("flightrecorder not JSON: %v\n%s", err, body)
			}
			if len(recs) != 0 {
				t.Errorf("fresh server has %d flight records", len(recs))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			code, body := get(t, s.URL()+tc.path)
			if code != tc.wantCode {
				t.Fatalf("GET %s = %d, want %d\n%s", tc.path, code, tc.wantCode, body)
			}
			tc.check(t, body)
		})
	}
}

// TestObservabilityEndpointsAfterTraffic drives writes and reads through
// the engine, then asserts /statusz reports per-stage percentiles and the
// flight recorder replays the requests with their trace ids.
func TestObservabilityEndpointsAfterTraffic(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2, Tracing: true}, Config{})
	c := NewHTTPClient(s.URL())
	defer c.Close()

	var traces []uint64
	for i := 0; i < 8; i++ {
		w, err := c.Write(uint64(i), line(uint64(i), 99))
		if err != nil {
			t.Fatal(err)
		}
		if w.Trace == 0 {
			t.Fatal("write response missing trace id")
		}
		traces = append(traces, w.Trace)
	}
	if _, err := c.Read(3); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, s.URL()+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	var st StatuszResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz not JSON: %v", err)
	}
	if len(st.Stages) == 0 {
		t.Fatalf("statusz has no stage data after traffic: %s", body)
	}
	// ESD's fingerprint stage is absent by design: the fingerprint falls
	// out of the ECC pipeline at zero marginal latency (the paper's core
	// trick), so only the stages that cost time appear.
	for _, stage := range []string{"efit", "encrypt", "media", "amt"} {
		sg, ok := st.Stages[stage]
		if !ok || sg.Count == 0 {
			t.Errorf("stage %q missing or empty in %v", stage, st.Stages)
		}
		if sg.P99Ns < sg.P50Ns {
			t.Errorf("stage %q p99 %v < p50 %v", stage, sg.P99Ns, sg.P50Ns)
		}
	}
	if st.FlightRecords == 0 {
		t.Error("statusz reports zero flight records after traffic")
	}

	code, body = get(t, s.URL()+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("flightrecorder = %d", code)
	}
	var recs []telemetry.FlightRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("flightrecorder not JSON: %v", err)
	}
	if len(recs) != 9 { // 8 writes + 1 read
		t.Fatalf("flight recorder has %d records, want 9", len(recs))
	}
	byTrace := make(map[uint64]telemetry.FlightRecord)
	for _, r := range recs {
		byTrace[r.Trace] = r
	}
	for _, tr := range traces {
		r, ok := byTrace[tr]
		if !ok {
			t.Fatalf("trace %d not in flight recorder", tr)
		}
		if r.Kind != "write" || r.LatNs <= 0 {
			t.Errorf("trace %d record = %+v", tr, r)
		}
		if len(r.StagesNs) == 0 {
			t.Errorf("trace %d write record has no stage breakdown", tr)
		}
	}
}

// TestDeviceEndpoint drives a hot-line workload (one hammered address
// plus duplicate content) and asserts /debug/device exposes the wear
// heatmap rows, dedup effectiveness and histogram needed to diagnose it,
// and that /statusz carries the compact device + rates sections.
func TestDeviceEndpoint(t *testing.T) {
	eng, s := testServer(t, shard.Options{Shards: 2}, Config{})
	c := NewHTTPClient(s.URL())
	defer c.Close()

	// 32 writes of changing content to one address (a hot line — each
	// write is unique so the media line really rewrites), plus 16 writes
	// of identical content across distinct addresses (dedup hits).
	for i := 0; i < 32; i++ {
		if _, err := c.Write(7, line(uint64(i), 5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := c.Write(uint64(100+i*64), line(42)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read(7); err != nil {
		t.Fatal(err)
	}
	// Flush barriers every worker, publishing the last batch's staged
	// health accounting before the assertions below read it.
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, s.URL()+"/debug/device")
	if code != http.StatusOK {
		t.Fatalf("debug/device = %d\n%s", code, body)
	}
	var dev DeviceResponse
	if err := json.Unmarshal([]byte(body), &dev); err != nil {
		t.Fatalf("debug/device not JSON: %v\n%s", err, body)
	}
	if dev.Scheme == "" || dev.Shards != 2 {
		t.Errorf("scheme=%q shards=%d, want esd/2", dev.Scheme, dev.Shards)
	}
	if dev.MediaWrites == 0 || dev.LinesTouched == 0 {
		t.Errorf("no media writes recorded: %+v", dev)
	}
	if len(dev.Banks) == 0 || len(dev.WearHist) == 0 {
		t.Errorf("banks=%d hist=%d, want both nonempty", len(dev.Banks), len(dev.WearHist))
	}
	var bankWrites uint64
	for _, b := range dev.Banks {
		bankWrites += b.Writes
	}
	if bankWrites != dev.MediaWrites {
		t.Errorf("bank writes %d != media writes %d", bankWrites, dev.MediaWrites)
	}
	// The hammered line must make the wear distribution visibly skewed.
	if dev.Wear.Max < 16 || dev.Wear.Skew <= 1 {
		t.Errorf("wear max=%d skew=%.2f, want hammered line to dominate", dev.Wear.Max, dev.Wear.Skew)
	}
	if dev.Dedup.Writes != 48 {
		t.Errorf("dedup.writes = %d, want 48", dev.Dedup.Writes)
	}
	if dev.Dedup.DedupWrites == 0 || dev.Dedup.HitRate <= 0 || dev.Dedup.BytesSaved == 0 {
		t.Errorf("duplicate content not deduped: %+v", dev.Dedup)
	}

	var st StatuszResponse
	_, body = get(t, s.URL()+"/statusz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Device == nil || st.Rates == nil {
		t.Fatalf("statusz missing device/rates sections: %s", body)
	}
	if st.Device.MediaWrites != dev.MediaWrites || st.Device.MaxWear != dev.Wear.Max {
		t.Errorf("statusz device %+v disagrees with /debug/device %+v", st.Device, dev.Wear)
	}
	if st.Rates.WindowS <= 0 {
		t.Errorf("rates window = %v", st.Rates.WindowS)
	}
}

// TestReadyzWhileDraining exercises the not-ready state: once Shutdown
// has begun, /readyz must flip to 503 and /statusz must report
// ready=false, while /healthz (liveness) stays 200. The handlers are
// driven directly because the listener is gone by then.
func TestReadyzWhileDraining(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 1}, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	h := s.mux()
	cases := []struct {
		path     string
		wantCode int
		contains string
	}{
		{"/healthz", http.StatusOK, "ok"},
		{"/readyz", http.StatusServiceUnavailable, "draining"},
		{"/statusz", http.StatusOK, `"ready":false`},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
			if rec.Code != tc.wantCode {
				t.Fatalf("GET %s = %d, want %d", tc.path, rec.Code, tc.wantCode)
			}
			if !strings.Contains(rec.Body.String(), tc.contains) {
				t.Errorf("GET %s body %q missing %q", tc.path, rec.Body.String(), tc.contains)
			}
		})
	}
}

// TestSlowRequestLogging sets a threshold every request exceeds and
// asserts the slow log captures trace-stamped lines and /statusz counts
// them.
func TestSlowRequestLogging(t *testing.T) {
	var buf syncBuf
	_, s := testServer(t, shard.Options{Shards: 1},
		Config{SlowRequestThreshold: time.Nanosecond, SlowLog: &buf})
	c := NewHTTPClient(s.URL())
	defer c.Close()

	w, err := c.Write(7, line(1))
	if err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	if !strings.Contains(log, "slow request") || !strings.Contains(log, "http write") {
		t.Fatalf("slow log missing entry: %q", log)
	}
	if !strings.Contains(log, "trace=") {
		t.Fatalf("slow log entry not trace-stamped: %q", log)
	}
	var st StatuszResponse
	_, body := get(t, s.URL()+"/statusz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.SlowRequests == 0 {
		t.Error("statusz slow_requests = 0 after a slow request")
	}
	_ = w
}

// TestFlightRecorderDumpDecodable checks the SIGQUIT-style full dump:
// after traffic (including a request abandoned mid-flight by its
// deadline) every JSONL line after the header must decode back into a
// FlightRecord.
func TestFlightRecorderDumpDecodable(t *testing.T) {
	eng, s := testServer(t, shard.Options{Shards: 1, Tracing: true}, Config{})
	c := NewHTTPClient(s.URL())
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.Write(uint64(i), line(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A request whose caller gave up mid-flight: the shard still executes
	// it, so it must still appear in (and not corrupt) the black box.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _ = eng.TryWriteTraced(ctx, 50, line(50), eng.NewTrace())
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	s.DumpFlightRecorder(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("dump too short:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], "flight recorder dump") {
		t.Errorf("dump header = %q", lines[0])
	}
	decoded := 0
	for _, ln := range lines[1:] {
		var rec telemetry.FlightRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("undecodable dump line %q: %v", ln, err)
		}
		if rec.Kind != "write" && rec.Kind != "read" {
			t.Errorf("record kind = %q", rec.Kind)
		}
		decoded++
	}
	if decoded < 5 {
		t.Errorf("decoded %d records, want >= 5 (4 writes + abandoned)", decoded)
	}
}
