package server

import (
	"net"
	"testing"
	"time"
)

// poolBackend is a minimal TCP acceptor: the pool only dials and closes
// connections in these tests, so no protocol handling is needed.
func poolBackend(t *testing.T) (addr string, accepted func() int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	count := make(chan struct{}, 128)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			count <- struct{}{}
			go func() {
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						_ = c.Close()
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() int { return len(count) }
}

func TestPoolReusesConnections(t *testing.T) {
	addr, _ := poolBackend(t)
	p := NewPool(addr, 4, time.Minute)
	defer p.Close()

	for i := 0; i < 5; i++ {
		c, err := p.Get()
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		p.Put(c)
	}
	if d := p.Dials(); d != 1 {
		t.Fatalf("serial Get/Put dialed %d times, want 1", d)
	}
	if r := p.Reuses(); r != 4 {
		t.Fatalf("reuses = %d, want 4", r)
	}
	if n := p.IdleLen(); n != 1 {
		t.Fatalf("idle = %d, want 1", n)
	}
}

func TestPoolCapBoundsIdleList(t *testing.T) {
	addr, _ := poolBackend(t)
	p := NewPool(addr, 2, time.Minute)
	defer p.Close()

	// Borrow three concurrently, return all three: only cap survive idle.
	var conns []*TCPClient
	for i := 0; i < 3; i++ {
		c, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if d := p.Dials(); d != 3 {
		t.Fatalf("dials = %d, want 3", d)
	}
	for _, c := range conns {
		p.Put(c)
	}
	if n := p.IdleLen(); n != 2 {
		t.Fatalf("idle = %d, want cap 2", n)
	}
}

func TestPoolIdleReap(t *testing.T) {
	addr, _ := poolBackend(t)
	const idleTimeout = 20 * time.Millisecond
	p := NewPool(addr, 4, idleTimeout)
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	p.Put(c2)
	if n := p.IdleLen(); n != 2 {
		t.Fatalf("idle = %d, want 2", n)
	}

	// Nothing expires before the timeout...
	if reaped := p.Reap(time.Now()); reaped != 0 {
		t.Fatalf("premature reap closed %d connections", reaped)
	}
	// ...and everything expires after it (explicit clock, no sleep).
	if reaped := p.Reap(time.Now().Add(2 * idleTimeout)); reaped != 2 {
		t.Fatalf("reap closed %d connections, want 2", reaped)
	}
	if n := p.IdleLen(); n != 0 {
		t.Fatalf("idle = %d after reap, want 0", n)
	}

	// The next Get must dial fresh rather than hand out a reaped conn.
	before := p.Dials()
	c3, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c3)
	if d := p.Dials(); d != before+1 {
		t.Fatalf("dials = %d after reap, want %d", d, before+1)
	}
}

func TestPoolCloseRejectsGet(t *testing.T) {
	addr, _ := poolBackend(t)
	p := NewPool(addr, 2, time.Minute)
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Get(); err != ErrPoolClosed {
		t.Fatalf("Get after Close: err = %v, want ErrPoolClosed", err)
	}
	// A borrowed conn returned after Close is closed, not retained.
	p.Put(c)
	if n := p.IdleLen(); n != 0 {
		t.Fatalf("idle = %d after Close, want 0", n)
	}
}
