// Package server is the network service front-end over the sharded
// engine: an HTTP/JSON API and a raw-TCP binary protocol exposing
// read/write/flush/stats, with per-request timeouts, backpressure
// (bounded shard queues surfaced as 429-style shedding) and graceful
// drain on shutdown. The package also provides the matching clients used
// by cmd/esdload and the tests.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/esdsim/esd/internal/ecc"
)

// Binary protocol ops (one request per frame, one response per frame,
// strictly alternating per connection).
//
// Request frames:
//
//	write:       'W' addr:8 line:64
//	read:        'R' addr:8
//	flush:       'F'
//	stats:       'S'
//	writeBatch:  'B' count:2 count×(addr:8 line:64)
//	readBatch:   'b' count:2 count×(addr:8)
//	hello:       'H' ver:1
//	writeTr:     'w' trace:8 addr:8 line:64
//	readTr:      'r' trace:8 addr:8
//	writeBatchTr:'V' trace:8 count:2 count×(addr:8 line:64)
//	readBatchTr: 'v' trace:8 count:2 count×(addr:8)
//
// Response frames:
//
//	write:       status:1 [dedup:1 phys:8 latNs:8]     (payload on StatusOK)
//	read:        status:1 [hit:1 line:64 latNs:8]
//	flush:       status:1
//	stats:       status:1 [len:4 json:len]
//	writeBatch:  status:1 [count:2 count×(status:1 dedup:1 phys:8 latNs:8)]
//	readBatch:   status:1 [count:2 count×(status:1 hit:1 line:64 latNs:8)]
//	hello:       status:1 [ver:1]
//	writeTr:     status:1 [dedup:1 phys:8 latNs:8 trace:8]
//	readTr:      status:1 [hit:1 line:64 latNs:8 trace:8]
//	writeBatchTr:status:1 [count:2 trace:8 count×(status:1 dedup:1 phys:8 latNs:8)]
//	readBatchTr: status:1 [count:2 trace:8 count×(status:1 hit:1 line:64 latNs:8)]
//
// All integers are little-endian. A non-OK status ends the frame after
// the status byte. Batch frames carry up to MaxBatchOps operations and
// complete one round trip for the whole batch; the frame-level status is
// non-OK only for malformed requests (count over the cap — the
// connection is then dropped), while per-op flow control (overloaded,
// timeout, closing) is reported in the fixed-size per-op records, whose
// payload fields are zero unless the op's status is StatusOK. A
// zero-count batch is valid and returns an OK frame with count 0.
//
// Protocol versioning and trace propagation: version 1 adds the traced
// op variants ('w', 'r', 'V', 'v'), which prefix the version-0 body with
// the originating trace ID and echo it at the tail of the response. A
// traced server adopts the wire trace ID instead of minting one, so the
// router's ID appears in the node's slow-request log, flight recorder
// and response. Version-0 peers interoperate both ways: a v0 client
// simply never sends traced frames, and a v1 client discovers a v0
// server with one 'H' hello round trip per connection pool (a v0 server
// answers any unknown op, including 'H', with StatusBadRequest and
// leaves its read stream positioned after the op byte — the hello frame
// body is a single version byte that decodes as another unknown op, so
// probing is harmless; the prober discards the connection and falls back
// to untraced frames for that node).
const (
	OpWrite      byte = 'W'
	OpRead       byte = 'R'
	OpFlush      byte = 'F'
	OpStats      byte = 'S'
	OpWriteBatch byte = 'B'
	OpReadBatch  byte = 'b'

	// Version-1 ops: trace-propagating variants plus the hello probe.
	OpHello        byte = 'H'
	OpWriteTr      byte = 'w'
	OpReadTr       byte = 'r'
	OpWriteBatchTr byte = 'V'
	OpReadBatchTr  byte = 'v'
)

// ProtoVersion is the protocol version this package speaks. Version 1
// added trace propagation; version 0 is the PR 8 frame set.
const ProtoVersion = 1

// MaxBatchOps caps the operations one batch frame may carry; it bounds
// the per-connection buffering a frame can demand on either side.
const MaxBatchOps = 256

// Per-op response record sizes inside batch frames.
const (
	writeBatchRecLen = 1 + 1 + 8 + 8
	readBatchRecLen  = 1 + 1 + ecc.LineSize + 8
)

// Response status codes shared by the TCP protocol and, by analogy, the
// HTTP status mapping (429/504/503/400).
const (
	StatusOK          byte = 0
	StatusOverloaded  byte = 1 // shard queue full — retry with backoff
	StatusTimeout     byte = 2 // request exceeded the server's per-request budget
	StatusClosing     byte = 3 // server is draining
	StatusBadRequest  byte = 4
	StatusUnavailable byte = 5 // cluster router: no healthy replica for the address
)

// StatusText names a protocol status byte for logs and trace timelines.
func StatusText(s byte) string { return statusText(s) }

func statusText(s byte) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusTimeout:
		return "timeout"
	case StatusClosing:
		return "closing"
	case StatusBadRequest:
		return "bad request"
	case StatusUnavailable:
		return "no healthy replica"
	default:
		return fmt.Sprintf("status %d", s)
	}
}

// writeReq/readReq sizes after the op byte; traced variants prefix the
// body with traceLen bytes of trace ID.
const (
	writeReqLen = 8 + ecc.LineSize
	readReqLen  = 8
	traceLen    = 8
)

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// readFull is io.ReadFull with the usual EOF propagation.
func readFull(r io.Reader, b []byte) error {
	_, err := io.ReadFull(r, b)
	return err
}
