package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/shard"
)

func dialTest(t *testing.T, s *Server) *TCPClient {
	t.Helper()
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestTCPHello(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "x"})
	c := dialTest(t, s)
	ver, err := c.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if ver != ProtoVersion {
		t.Fatalf("hello version = %d, want %d", ver, ProtoVersion)
	}
}

// A traced frame must adopt the wire trace ID: the response echoes it and
// the shard flight recorder holds it — the node-side halves of cross-
// cluster correlation.
func TestTCPTracedRoundTrip(t *testing.T) {
	e, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "x"})
	c := dialTest(t, s)

	const trace uint64 = 0xDEADBEEF12345678
	w, err := c.WriteTraced(trace, 100, line(42, 7))
	if err != nil {
		t.Fatal(err)
	}
	if w.Trace != trace {
		t.Fatalf("write echoed trace %#x, want %#x", w.Trace, trace)
	}
	if w.LatencyNs <= 0 {
		t.Fatalf("write latency %v, want > 0", w.LatencyNs)
	}
	r, err := c.ReadTraced(trace+1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit || r.Trace != trace+1 {
		t.Fatalf("read hit=%v trace=%#x, want hit with trace %#x", r.Hit, r.Trace, trace+1)
	}

	// The adopted ID must land in the shard flight recorder, not a fresh
	// node-local one.
	found := false
	for _, rec := range e.FlightRecords() {
		if rec.Trace == trace {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("trace %#x not found in flight recorder", trace)
	}

	// Untraced frames on the same connection still mint local IDs.
	w2, err := c.Write(200, line(9))
	if err != nil {
		t.Fatal(err)
	}
	if w2.Trace != 0 {
		t.Fatalf("untraced write response carries trace %#x", w2.Trace)
	}
}

func TestTCPTracedBatch(t *testing.T) {
	e, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "x"})
	c := dialTest(t, s)

	const trace = 0xA11CE
	ops := []BatchWriteOp{
		{Addr: 10, Line: line(1)},
		{Addr: 11, Line: line(2)},
		{Addr: 12, Line: line(1)}, // same content+shard as addr 10 → dedup
	}
	res := make([]BatchWriteResult, len(ops))
	echo, err := c.WriteBatchTraced(trace, ops, res)
	if err != nil {
		t.Fatal(err)
	}
	if echo != trace {
		t.Fatalf("write batch echoed trace %#x, want %#x", echo, trace)
	}
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
	}
	if !res[2].Dedup {
		t.Fatal("duplicate content in traced batch not deduplicated")
	}

	rres := make([]BatchReadResult, 2)
	echo, err = c.ReadBatchTraced(trace+1, []uint64{10, 11}, rres)
	if err != nil {
		t.Fatal(err)
	}
	if echo != trace+1 {
		t.Fatalf("read batch echoed trace %#x, want %#x", echo, trace+1)
	}
	if !rres[0].Hit || rres[0].Data != line(1) {
		t.Fatalf("batched traced read returned %+v", rres[0])
	}
	found := false
	for _, rec := range e.FlightRecords() {
		if rec.Trace == trace {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("batch trace %#x not found in flight recorder", trace)
	}
}

// DisableTracedFrames must reproduce version-0 behavior bit-for-bit: the
// hello probe comes back StatusBadRequest (surfaced as ErrLegacyProto) and
// version-0 frames keep working on a fresh connection.
func TestTCPLegacyFramesMode(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "x", DisableTracedFrames: true})

	c := dialTest(t, s)
	if _, err := c.Hello(); !errors.Is(err, ErrLegacyProto) {
		t.Fatalf("hello against legacy server = %v, want ErrLegacyProto", err)
	}
	// The probed connection has a junk status byte queued (the server
	// answered the hello body byte as a second unknown op) — per the
	// protocol contract the prober discards it and dials fresh.
	c2 := dialTest(t, s)
	w, err := c2.Write(100, line(5))
	if err != nil {
		t.Fatal(err)
	}
	if w.Dedup {
		t.Fatal("first write reported dedup")
	}
	r, err := c2.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Fatal("read miss after write on legacy-mode server")
	}
}

func TestAdoptTrace(t *testing.T) {
	e := testEngine(t, shard.Options{Shards: 1})
	tc := e.AdoptTrace(77)
	if tc.TraceID != 77 || tc.Span != 2 || tc.Parent != 1 {
		t.Fatalf("AdoptTrace = %+v, want TraceID 77, Span 2, Parent 1", tc)
	}
}

// A slow batch frame's log line must carry the propagated trace ID plus
// batch size and distinct-shard fan-out.
func TestSlowBatchLogFanout(t *testing.T) {
	var buf bytes.Buffer
	_, s := testServer(t, shard.Options{Shards: 2}, Config{
		TCPAddr:              "x",
		SlowRequestThreshold: time.Nanosecond, // everything is "slow"
		SlowLog:              &buf,
	})
	c := dialTest(t, s)

	ops := []BatchWriteOp{
		{Addr: 10, Line: line(1)}, // shard 0
		{Addr: 11, Line: line(2)}, // shard 1
		{Addr: 12, Line: line(3)}, // shard 0
	}
	res := make([]BatchWriteResult, len(ops))
	if _, err := c.WriteBatchTraced(0xBEEF, ops, res); err != nil {
		t.Fatal(err)
	}

	s.slowMu.Lock()
	logged := buf.String()
	s.slowMu.Unlock()
	for _, want := range []string{"trace=48879", "write-batch", "batch=3", "shards=2"} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow log missing %q; got:\n%s", want, logged)
		}
	}
}
