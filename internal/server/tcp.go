package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"time"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/telemetry"
)

// Batch-frame scratch pools: one full-size buffer per in-flight batch
// frame, so the steady-state batch path does not allocate per frame. A
// buffer is recycled as soon as serveFrame returns — safe even when the
// engine call was abandoned on timeout, because the shard engine copies
// lines into its own sub-batch buffers at submit time.
var (
	batchOpsPool = sync.Pool{New: func() any {
		s := make([]shard.WriteBatchOp, MaxBatchOps)
		return &s
	}}
	batchAddrsPool = sync.Pool{New: func() any {
		s := make([]uint64, MaxBatchOps)
		return &s
	}}
)

// acceptTCP runs the binary-protocol accept loop until the listener is
// closed by Shutdown.
func (s *Server) acceptTCP() {
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return // listener closed
		}
		select {
		case <-s.draining:
			_ = conn.Close()
			continue
		default:
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.inflight.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		_ = conn.Close()
		s.inflight.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var op [1]byte
	for {
		// Between frames the connection idles; poll the read with a short
		// deadline so draining connections notice Shutdown promptly.
		_ = conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if err := readFull(br, op[:]); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				select {
				case <-s.draining:
					return
				default:
					continue
				}
			}
			return // EOF or broken connection
		}
		// A frame has begun: finish it even while draining.
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if !s.serveFrame(br, bw, op[0]) {
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// frameTrace builds the request's trace context: a traced frame adopts
// the wire-propagated ID (the cluster router minted it at the fleet
// edge), an untraced one mints a fresh node-local ID.
func (s *Server) frameTrace(traced bool, trace uint64) telemetry.TraceCtx {
	var tc telemetry.TraceCtx
	if traced {
		tc = s.eng.AdoptTrace(trace)
	} else {
		tc = s.eng.NewTrace()
	}
	tc.StartNs = time.Now().UnixNano()
	return tc
}

// serveFrame reads the rest of one request frame and writes the response
// frame to bw. It returns false when the connection should be dropped
// (malformed frame).
func (s *Server) serveFrame(br *bufio.Reader, bw *bufio.Writer, op byte) bool {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()

	// Version-1 preamble: traced data frames carry the trace ID before
	// the version-0 body; 'H' negotiates the version. A server emulating
	// a version-0 binary (DisableTracedFrames) treats all of them as
	// unknown ops, exactly as the old code did.
	traced := false
	var trace uint64
	switch op {
	case OpHello, OpWriteTr, OpReadTr, OpWriteBatchTr, OpReadBatchTr:
		if s.cfg.DisableTracedFrames {
			return writeStatus(bw, StatusBadRequest)
		}
		if op == OpHello {
			var ver [1]byte
			if readFull(br, ver[:]) != nil {
				return false
			}
			var resp [2]byte
			resp[0] = StatusOK
			resp[1] = ProtoVersion
			_, werr := bw.Write(resp[:])
			return werr == nil
		}
		// Peek+Discard reads the preamble out of bufio's own buffer: no
		// escaping scratch array, so tracing adds zero allocations here.
		tb, err := br.Peek(traceLen)
		if err != nil {
			return false
		}
		trace = getU64(tb)
		if _, err := br.Discard(traceLen); err != nil {
			return false
		}
		traced = true
	}

	switch op {
	case OpWrite, OpWriteTr:
		var req [writeReqLen]byte
		if readFull(br, req[:]) != nil {
			return false
		}
		var line ecc.Line
		copy(line[:], req[8:])
		addr := getU64(req[:8])
		tc := s.frameTrace(traced, trace)
		out, err := s.eng.TryWriteTraced(ctx, addr, line, tc)
		s.noteRequest("tcp", "write", tc, addr, time.Since(time.Unix(0, tc.StartNs)), err)
		if err != nil {
			return writeStatus(bw, errStatus(err))
		}
		// Response frames are fixed-size: build them in stack arrays so the
		// per-frame path allocates nothing (bufio.Writer.Write copies).
		var resp [1 + 1 + 8 + 8 + traceLen]byte
		resp[0] = StatusOK
		if out.Deduplicated {
			resp[1] = 1
		}
		putU64(resp[2:], out.PhysAddr)
		putU64(resp[10:], uint64(out.Breakdown.Total().Nanoseconds()))
		n := 1 + 1 + 8 + 8
		if traced {
			putU64(resp[n:], tc.TraceID)
			n += traceLen
		}
		_, werr := bw.Write(resp[:n])
		return werr == nil
	case OpRead, OpReadTr:
		var req [readReqLen]byte
		if readFull(br, req[:]) != nil {
			return false
		}
		addr := getU64(req[:])
		tc := s.frameTrace(traced, trace)
		res, err := s.eng.TryReadTraced(ctx, addr, tc)
		s.noteRequest("tcp", "read", tc, addr, time.Since(time.Unix(0, tc.StartNs)), err)
		if err != nil {
			return writeStatus(bw, errStatus(err))
		}
		var resp [1 + 1 + ecc.LineSize + 8 + traceLen]byte
		resp[0] = StatusOK
		if res.Hit {
			resp[1] = 1
		}
		copy(resp[2:], res.Data[:])
		putU64(resp[2+ecc.LineSize:], uint64(res.Lat.Nanoseconds()))
		n := 1 + 1 + ecc.LineSize + 8
		if traced {
			putU64(resp[n:], tc.TraceID)
			n += traceLen
		}
		_, werr := bw.Write(resp[:n])
		return werr == nil
	case OpWriteBatch, OpWriteBatchTr:
		var cnt [2]byte
		if readFull(br, cnt[:]) != nil {
			return false
		}
		n := int(binary.LittleEndian.Uint16(cnt[:]))
		if n > MaxBatchOps {
			// Oversized counts are malformed, not flow control: reject the
			// frame and drop the connection (the body was never read, so
			// the stream position is unknown). Flush so the client sees the
			// status before the close.
			writeStatus(bw, StatusBadRequest)
			_ = bw.Flush()
			return false
		}
		if n == 0 {
			return writeBatchHead(bw, 0, traced, trace)
		}
		opsp := batchOpsPool.Get().(*[]shard.WriteBatchOp)
		defer batchOpsPool.Put(opsp)
		ops := (*opsp)[:n]
		var req [writeReqLen]byte
		for i := 0; i < n; i++ {
			if readFull(br, req[:]) != nil {
				return false
			}
			ops[i].Addr = getU64(req[:8])
			copy(ops[i].Line[:], req[8:])
		}
		tc := s.frameTrace(traced, trace)
		err := s.eng.TryWriteBatchTraced(ctx, ops, tc)
		s.noteBatch("tcp", "write-batch", tc, ops, nil, time.Since(time.Unix(0, tc.StartNs)), err)
		if !writeBatchHead(bw, n, traced, tc.TraceID) {
			return false
		}
		for i := 0; i < n; i++ {
			var rec [writeBatchRecLen]byte
			if ops[i].Err != nil {
				rec[0] = errStatus(ops[i].Err)
			} else {
				rec[0] = StatusOK
				if ops[i].Out.Deduplicated {
					rec[1] = 1
				}
				putU64(rec[2:], ops[i].Out.PhysAddr)
				putU64(rec[10:], uint64(ops[i].Out.Breakdown.Total().Nanoseconds()))
			}
			if _, err := bw.Write(rec[:]); err != nil {
				return false
			}
		}
		return true
	case OpReadBatch, OpReadBatchTr:
		var cnt [2]byte
		if readFull(br, cnt[:]) != nil {
			return false
		}
		n := int(binary.LittleEndian.Uint16(cnt[:]))
		if n > MaxBatchOps {
			writeStatus(bw, StatusBadRequest)
			_ = bw.Flush()
			return false
		}
		if n == 0 {
			return writeBatchHead(bw, 0, traced, trace)
		}
		addrsp := batchAddrsPool.Get().(*[]uint64)
		defer batchAddrsPool.Put(addrsp)
		addrs := (*addrsp)[:n]
		var req [readReqLen]byte
		for i := 0; i < n; i++ {
			if readFull(br, req[:]) != nil {
				return false
			}
			addrs[i] = getU64(req[:])
		}
		tc := s.frameTrace(traced, trace)
		if !writeBatchHead(bw, n, traced, tc.TraceID) {
			return false
		}
		var firstErr error
		for i := 0; i < n; i++ {
			var rec [readBatchRecLen]byte
			res, err := s.eng.TryReadTraced(ctx, addrs[i], tc)
			if err != nil {
				rec[0] = errStatus(err)
				if firstErr == nil {
					firstErr = err
				}
			} else {
				rec[0] = StatusOK
				if res.Hit {
					rec[1] = 1
				}
				copy(rec[2:], res.Data[:])
				putU64(rec[2+ecc.LineSize:], uint64(res.Lat.Nanoseconds()))
			}
			if _, err := bw.Write(rec[:]); err != nil {
				return false
			}
		}
		s.noteBatch("tcp", "read-batch", tc, nil, addrs, time.Since(time.Unix(0, tc.StartNs)), firstErr)
		return true
	case OpFlush:
		if err := s.eng.Flush(); err != nil {
			return writeStatus(bw, errStatus(err))
		}
		return writeStatus(bw, StatusOK)
	case OpStats:
		sum, err := s.eng.Summary()
		if err != nil {
			return writeStatus(bw, errStatus(err))
		}
		payload, err := json.Marshal(statsFrom(s.eng, sum))
		if err != nil {
			return writeStatus(bw, StatusBadRequest)
		}
		var head [5]byte
		head[0] = StatusOK
		head[1] = byte(len(payload))
		head[2] = byte(len(payload) >> 8)
		head[3] = byte(len(payload) >> 16)
		head[4] = byte(len(payload) >> 24)
		if _, err := bw.Write(head[:]); err != nil {
			return false
		}
		_, werr := bw.Write(payload)
		return werr == nil
	default:
		return writeStatus(bw, StatusBadRequest)
	}
}

// writeBatchHead emits a batch response head: status, count, and — for
// traced frames — the echoed trace ID.
func writeBatchHead(bw *bufio.Writer, n int, traced bool, trace uint64) bool {
	var head [3 + traceLen]byte
	head[0] = StatusOK
	binary.LittleEndian.PutUint16(head[1:], uint16(n))
	k := 3
	if traced {
		putU64(head[k:], trace)
		k += traceLen
	}
	_, err := bw.Write(head[:k])
	return err == nil
}

func writeStatus(bw *bufio.Writer, st byte) bool {
	return bw.WriteByte(st) == nil
}

// errStatus maps engine errors to protocol statuses (mirror of mapErr).
func errStatus(err error) byte {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return StatusTimeout
	case errors.Is(err, shard.ErrClosed):
		return StatusClosing
	default:
		return StatusBadRequest
	}
}
