package server

import (
	"encoding/binary"
	"testing"

	"github.com/esdsim/esd/internal/shard"
)

// TestTCPBatchRoundTrip exercises the batched frames end to end: one 'B'
// frame carrying mixed unique/duplicate writes, then one 'b' frame
// reading everything back, against the scalar frames for the same data.
func TestTCPBatchRoundTrip(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "placeholder"})
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	ops := make([]BatchWriteOp, n)
	res := make([]BatchWriteResult, n)
	for i := range ops {
		ops[i].Addr = uint64(i)
		ops[i].Line = line(uint64(i%5), 7) // 5 contents: duplicates across addrs
	}
	if err := c.WriteBatch(ops, res); err != nil {
		t.Fatal(err)
	}
	dedup := 0
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
		if res[i].LatencyNs <= 0 {
			t.Fatalf("op %d: latency %v", i, res[i].LatencyNs)
		}
		if res[i].Dedup {
			dedup++
		}
	}
	if dedup == 0 {
		t.Fatal("no op deduplicated despite 5 contents over 40 addrs")
	}

	addrs := make([]uint64, n+2)
	rres := make([]BatchReadResult, n+2)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	if err := c.ReadBatch(addrs, rres); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if rres[i].Err != nil || !rres[i].Hit {
			t.Fatalf("read %d: err=%v hit=%v", i, rres[i].Err, rres[i].Hit)
		}
		if want := line(uint64(i%5), 7); rres[i].Data != want {
			t.Fatalf("read %d: data %v, want %v", i, rres[i].Data, want)
		}
	}
	for i := n; i < n+2; i++ {
		if rres[i].Err != nil || rres[i].Hit {
			t.Fatalf("read %d (never written): err=%v hit=%v", i, rres[i].Err, rres[i].Hit)
		}
	}

	// The batched stream must be visible to scalar frames on the same
	// connection (strict alternation preserved).
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != n {
		t.Fatalf("stats writes=%d, want %d", st.Writes, n)
	}
}

// TestTCPBatchZeroOps verifies the zero-count batch frames complete OK
// and leave the connection usable.
func TestTCPBatchZeroOps(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 1}, Config{TCPAddr: "placeholder"})
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(3, line(1)); err != nil {
		t.Fatal(err)
	}
}

// TestTCPBatchOversizedCount sends a count over MaxBatchOps and expects
// StatusBadRequest followed by a dropped connection.
func TestTCPBatchOversizedCount(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 1}, Config{TCPAddr: "placeholder"})
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var frame [3]byte
	frame[0] = OpWriteBatch
	binary.LittleEndian.PutUint16(frame[1:], MaxBatchOps+1)
	st, err := c.roundTrip(frame[:])
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want StatusBadRequest", st)
	}
	// The server dropped the connection after the status byte.
	if _, err := c.Write(1, line(1)); err == nil {
		t.Fatal("connection still alive after oversized batch frame")
	}
}

// TestClientBatchValidation checks the client-side guards.
func TestClientBatchValidation(t *testing.T) {
	c := &TCPClient{}
	ops := make([]BatchWriteOp, MaxBatchOps+1)
	if err := c.WriteBatch(ops, make([]BatchWriteResult, len(ops))); err == nil {
		t.Fatal("oversized client batch accepted")
	}
	if err := c.WriteBatch(ops[:2], make([]BatchWriteResult, 1)); err == nil {
		t.Fatal("mismatched results slice accepted")
	}
	if err := c.ReadBatch(make([]uint64, MaxBatchOps+1), make([]BatchReadResult, MaxBatchOps+1)); err == nil {
		t.Fatal("oversized client read batch accepted")
	}
	if err := c.ReadBatch(make([]uint64, 2), make([]BatchReadResult, 3)); err == nil {
		t.Fatal("mismatched read results slice accepted")
	}
}
