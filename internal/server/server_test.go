package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/shard"
)

func testEngine(t *testing.T, opts shard.Options) *shard.Engine {
	t.Helper()
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 28
	e, err := shard.New(cfg, "esd", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

func testServer(t *testing.T, opts shard.Options, cfg Config) (*shard.Engine, *Server) {
	t.Helper()
	e := testEngine(t, opts)
	cfg.Addr = "127.0.0.1:0"
	if cfg.TCPAddr != "" {
		cfg.TCPAddr = "127.0.0.1:0"
	}
	s, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return e, s
}

func line(words ...uint64) ecc.Line {
	var l ecc.Line
	for i, w := range words {
		l.SetWord(i, w)
	}
	return l
}

func TestHTTPRoundTrip(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2}, Config{})
	c := NewHTTPClient(s.URL())
	defer c.Close()

	content := line(42, 7)
	w1, err := c.Write(100, content)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Dedup {
		t.Fatal("first write reported dedup")
	}
	if w1.LatencyNs <= 0 {
		t.Fatalf("write latency %v, want > 0", w1.LatencyNs)
	}
	// Same content, same shard (102 ≡ 100 mod 2) → deduplicated.
	w2, err := c.Write(102, content)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Dedup {
		t.Fatal("duplicate content on the same shard not deduplicated")
	}

	r, err := c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Fatal("read miss for a written address")
	}
	var got ecc.Line
	copy(got[:], r.Data)
	if got != content {
		t.Fatalf("read returned %v, want %v", got, content)
	}
	if r.LatencyNs <= 0 {
		t.Fatalf("read latency %v, want > 0", r.LatencyNs)
	}
	if r.Shard != 0 {
		t.Fatalf("addr 100 routed to shard %d, want 0", r.Shard)
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme != "esd" || st.Shards != 2 {
		t.Fatalf("stats scheme=%q shards=%d, want esd/2", st.Scheme, st.Shards)
	}
	if st.Writes != 2 || st.Reads != 1 || st.DedupWrites != 1 {
		t.Fatalf("stats writes=%d reads=%d dedup=%d, want 2/1/1", st.Writes, st.Reads, st.DedupWrites)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 1}, Config{})
	post := func(body string) int {
		resp, err := http.Post(s.URL()+"/v1/write", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{bad json`); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: got %d, want 400", code)
	}
	short, _ := json.Marshal(WriteRequest{Addr: 1, Data: []byte{1, 2, 3}})
	if code := post(string(short)); code != http.StatusBadRequest {
		t.Errorf("short line: got %d, want 400", code)
	}
	resp, err := http.Get(s.URL() + "/v1/read?addr=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad addr: got %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(s.URL() + "/v1/write") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/write: got %d, want 405", resp.StatusCode)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "placeholder"})
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	content := line(9, 9, 9)
	w, err := c.Write(5, content)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dedup || w.LatencyNs <= 0 {
		t.Fatalf("write outcome dedup=%v lat=%v", w.Dedup, w.LatencyNs)
	}
	r, err := c.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	var got ecc.Line
	copy(got[:], r.Data)
	if !r.Hit || got != content {
		t.Fatalf("read hit=%v data=%v, want %v", r.Hit, got, content)
	}
	if _, err := c.Read(6); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes != 1 || st.Reads != 2 {
		t.Fatalf("stats writes=%d reads=%d, want 1/2", st.Writes, st.Reads)
	}
}

func TestTCPUnknownOp(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 1}, Config{TCPAddr: "placeholder"})
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.roundTrip([]byte{'X'})
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusBadRequest {
		t.Fatalf("unknown op: status %d, want StatusBadRequest", st)
	}
}

func TestConcurrentHTTPClients(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 4, QueueDepth: 64}, Config{})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewHTTPClient(s.URL())
			defer c.Close()
			for i := 0; i < per; i++ {
				addr := uint64(w*1000 + i)
				if _, err := c.Write(addr, line(uint64(i%5))); err != nil && !errors.Is(err, ErrOverloaded) {
					errCh <- err
					return
				}
				if _, err := c.Read(addr); err != nil && !errors.Is(err, ErrOverloaded) {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c := NewHTTPClient(s.URL())
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || st.Reads == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	e, s := testServer(t, shard.Options{Shards: 2}, Config{TCPAddr: "placeholder"})
	c := NewHTTPClient(s.URL())
	defer c.Close()
	for i := uint64(0); i < 20; i++ {
		if _, err := c.Write(i, line(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The engine outlives the server and has every accepted write flushed.
	sum, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scheme.Writes != 20 {
		t.Fatalf("after drain engine saw %d writes, want 20", sum.Scheme.Writes)
	}
	// New requests are refused (connection error or 5xx — the listener is
	// closed).
	if _, err := c.Write(99, line(1)); err == nil {
		t.Fatal("write after Shutdown succeeded")
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestClosedEngineMapsTo503(t *testing.T) {
	e, s := testServer(t, shard.Options{Shards: 1}, Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	c := NewHTTPClient(s.URL())
	defer c.Close()
	_, err := c.Write(1, line(1))
	if !errors.Is(err, ErrClosing) {
		t.Fatalf("write on closed engine: got %v, want ErrClosing", err)
	}
}

func TestMetricsEndpointServed(t *testing.T) {
	_, s := testServer(t, shard.Options{Shards: 2, Metrics: true}, Config{})
	c := NewHTTPClient(s.URL())
	defer c.Close()
	if _, err := c.Write(3, line(1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esd_writes_total{shard="1"}`) {
		t.Fatalf("/metrics missing per-shard series; got:\n%.500s", buf.String())
	}
}
