package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"time"

	"github.com/esdsim/esd/internal/ecc"
)

// Client-visible flow-control errors, shared by the HTTP and TCP clients.
var (
	// ErrOverloaded reports HTTP 429 / StatusOverloaded: the target shard
	// queue was full and the request was shed.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrTimeout reports HTTP 504 / StatusTimeout.
	ErrTimeout = errors.New("server: request timed out")
	// ErrClosing reports HTTP 503 / StatusClosing: the server is draining.
	ErrClosing = errors.New("server: closing")
	// ErrUnavailable reports StatusUnavailable: a cluster router found no
	// healthy replica for the address (every candidate node was down or
	// exhausted its retry budget).
	ErrUnavailable = errors.New("server: no healthy replica")
)

// Client issues requests against a Server. Implemented by HTTPClient and
// TCPClient; esdload picks one via -proto.
type Client interface {
	Write(addr uint64, line ecc.Line) (WriteResponse, error)
	Read(addr uint64) (ReadResponse, error)
	Flush() error
	Stats() (StatsResponse, error)
	Close() error
}

// HTTPClient talks to the JSON API. Safe for concurrent use.
type HTTPClient struct {
	base string
	hc   *http.Client
}

// NewHTTPClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewHTTPClient(base string) *HTTPClient {
	return &HTTPClient{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

func httpErr(code int, body []byte) error {
	switch code {
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusGatewayTimeout:
		return ErrTimeout
	case http.StatusServiceUnavailable:
		return ErrClosing
	default:
		return fmt.Errorf("server: HTTP %d: %s", code, bytes.TrimSpace(body))
	}
}

func (c *HTTPClient) doJSON(method, path string, body io.Reader, out interface{}) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return httpErr(resp.StatusCode, b)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *HTTPClient) Write(addr uint64, line ecc.Line) (WriteResponse, error) {
	body, _ := json.Marshal(WriteRequest{Addr: addr, Data: line[:]})
	var out WriteResponse
	err := c.doJSON(http.MethodPost, "/v1/write", bytes.NewReader(body), &out)
	return out, err
}

func (c *HTTPClient) Read(addr uint64) (ReadResponse, error) {
	var out ReadResponse
	err := c.doJSON(http.MethodGet, "/v1/read?addr="+url.QueryEscape(fmt.Sprint(addr)), nil, &out)
	return out, err
}

func (c *HTTPClient) Flush() error {
	return c.doJSON(http.MethodPost, "/v1/flush", nil, nil)
}

func (c *HTTPClient) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.doJSON(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

func (c *HTTPClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// BatchWriteOp is one write in a TCPClient.WriteBatch frame.
type BatchWriteOp struct {
	Addr uint64
	Line ecc.Line
}

// BatchWriteResult is one per-op result of a batched write. Err decodes
// the per-op status (nil on StatusOK); the payload fields are valid only
// when Err is nil.
type BatchWriteResult struct {
	Err       error
	Dedup     bool
	PhysAddr  uint64
	LatencyNs float64
}

// BatchReadResult is one per-op result of a batched read.
type BatchReadResult struct {
	Err       error
	Hit       bool
	Data      ecc.Line
	LatencyNs float64
}

// TCPClient speaks the binary protocol over one connection. NOT safe for
// concurrent use (frames strictly alternate); esdload opens one per
// worker.
type TCPClient struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// batchBuf is the reusable frame scratch for WriteBatch/ReadBatch.
	batchBuf []byte
}

// DialTCP connects a binary-protocol client to addr.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

func statusErr(st byte) error {
	switch st {
	case StatusOverloaded:
		return ErrOverloaded
	case StatusTimeout:
		return ErrTimeout
	case StatusClosing:
		return ErrClosing
	case StatusUnavailable:
		return ErrUnavailable
	default:
		return fmt.Errorf("server: %s", statusText(st))
	}
}

// roundTrip sends one request frame and reads the status byte.
func (c *TCPClient) roundTrip(frame []byte) (byte, error) {
	if _, err := c.bw.Write(frame); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	var st [1]byte
	if err := readFull(c.br, st[:]); err != nil {
		return 0, err
	}
	return st[0], nil
}

func (c *TCPClient) Write(addr uint64, line ecc.Line) (WriteResponse, error) {
	// Request frames are fixed-size; stack arrays keep the per-call client
	// path allocation-free (roundTrip's bufio.Writer copies the bytes).
	var frame [1 + writeReqLen]byte
	frame[0] = OpWrite
	putU64(frame[1:9], addr)
	copy(frame[9:], line[:])
	st, err := c.roundTrip(frame[:])
	if err != nil {
		return WriteResponse{}, err
	}
	if st != StatusOK {
		return WriteResponse{}, statusErr(st)
	}
	var payload [1 + 8 + 8]byte
	if err := readFull(c.br, payload[:]); err != nil {
		return WriteResponse{}, err
	}
	return WriteResponse{
		Dedup:     payload[0] == 1,
		PhysAddr:  getU64(payload[1:9]),
		LatencyNs: float64(getU64(payload[9:])),
	}, nil
}

func (c *TCPClient) Read(addr uint64) (ReadResponse, error) {
	var frame [1 + readReqLen]byte
	frame[0] = OpRead
	putU64(frame[1:], addr)
	st, err := c.roundTrip(frame[:])
	if err != nil {
		return ReadResponse{}, err
	}
	if st != StatusOK {
		return ReadResponse{}, statusErr(st)
	}
	var payload [1 + ecc.LineSize + 8]byte
	if err := readFull(c.br, payload[:]); err != nil {
		return ReadResponse{}, err
	}
	return ReadResponse{
		Hit:       payload[0] == 1,
		Data:      append([]byte(nil), payload[1:1+ecc.LineSize]...),
		LatencyNs: float64(getU64(payload[1+ecc.LineSize:])),
	}, nil
}

// grow returns c.batchBuf resized to n bytes.
func (c *TCPClient) grow(n int) []byte {
	if cap(c.batchBuf) < n {
		c.batchBuf = make([]byte, n)
	}
	return c.batchBuf[:n]
}

// WriteBatch sends every op in one 'B' frame — one round trip for the
// whole batch — and decodes the per-op results into res, which must have
// len(ops) entries. len(ops) must not exceed MaxBatchOps. The returned
// error reports transport or framing failure; per-op flow control
// (overloaded, timeout, closing) lands in res[i].Err.
func (c *TCPClient) WriteBatch(ops []BatchWriteOp, res []BatchWriteResult) error {
	if len(ops) > MaxBatchOps {
		return fmt.Errorf("server: batch of %d ops exceeds MaxBatchOps=%d", len(ops), MaxBatchOps)
	}
	if len(res) != len(ops) {
		return fmt.Errorf("server: results slice has %d entries for %d ops", len(res), len(ops))
	}
	frame := c.grow(1 + 2 + len(ops)*writeReqLen)[:3]
	frame[0] = OpWriteBatch
	binary.LittleEndian.PutUint16(frame[1:], uint16(len(ops)))
	for i := range ops {
		var rec [writeReqLen]byte
		putU64(rec[:8], ops[i].Addr)
		copy(rec[8:], ops[i].Line[:])
		frame = append(frame, rec[:]...)
	}
	st, err := c.roundTrip(frame)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return statusErr(st)
	}
	var cnt [2]byte
	if err := readFull(c.br, cnt[:]); err != nil {
		return err
	}
	if n := int(binary.LittleEndian.Uint16(cnt[:])); n != len(ops) {
		return fmt.Errorf("server: batch response carries %d results for %d ops", n, len(ops))
	}
	payload := c.grow(len(ops) * writeBatchRecLen)
	if err := readFull(c.br, payload); err != nil {
		return err
	}
	for i := range res {
		rec := payload[i*writeBatchRecLen:]
		if rec[0] != StatusOK {
			res[i] = BatchWriteResult{Err: statusErr(rec[0])}
			continue
		}
		res[i] = BatchWriteResult{
			Dedup:     rec[1] == 1,
			PhysAddr:  getU64(rec[2:10]),
			LatencyNs: float64(getU64(rec[10:18])),
		}
	}
	return nil
}

// ReadBatch sends every address in one 'b' frame and decodes the per-op
// results into res (len(addrs) entries; see WriteBatch for the error
// contract).
func (c *TCPClient) ReadBatch(addrs []uint64, res []BatchReadResult) error {
	if len(addrs) > MaxBatchOps {
		return fmt.Errorf("server: batch of %d ops exceeds MaxBatchOps=%d", len(addrs), MaxBatchOps)
	}
	if len(res) != len(addrs) {
		return fmt.Errorf("server: results slice has %d entries for %d ops", len(res), len(addrs))
	}
	frame := c.grow(1 + 2 + len(addrs)*readReqLen)
	frame[0] = OpReadBatch
	binary.LittleEndian.PutUint16(frame[1:], uint16(len(addrs)))
	for i, a := range addrs {
		putU64(frame[3+i*readReqLen:], a)
	}
	st, err := c.roundTrip(frame)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return statusErr(st)
	}
	var cnt [2]byte
	if err := readFull(c.br, cnt[:]); err != nil {
		return err
	}
	if n := int(binary.LittleEndian.Uint16(cnt[:])); n != len(addrs) {
		return fmt.Errorf("server: batch response carries %d results for %d ops", n, len(addrs))
	}
	payload := c.grow(len(addrs) * readBatchRecLen)
	if err := readFull(c.br, payload); err != nil {
		return err
	}
	for i := range res {
		rec := payload[i*readBatchRecLen:]
		if rec[0] != StatusOK {
			res[i] = BatchReadResult{Err: statusErr(rec[0])}
			continue
		}
		res[i].Err = nil
		res[i].Hit = rec[1] == 1
		copy(res[i].Data[:], rec[2:2+ecc.LineSize])
		res[i].LatencyNs = float64(getU64(rec[2+ecc.LineSize : 2+ecc.LineSize+8]))
	}
	return nil
}

func (c *TCPClient) Flush() error {
	st, err := c.roundTrip([]byte{OpFlush})
	if err != nil {
		return err
	}
	if st != StatusOK {
		return statusErr(st)
	}
	return nil
}

func (c *TCPClient) Stats() (StatsResponse, error) {
	st, err := c.roundTrip([]byte{OpStats})
	if err != nil {
		return StatsResponse{}, err
	}
	if st != StatusOK {
		return StatsResponse{}, statusErr(st)
	}
	var lenBuf [4]byte
	if err := readFull(c.br, lenBuf[:]); err != nil {
		return StatsResponse{}, err
	}
	n := int(lenBuf[0]) | int(lenBuf[1])<<8 | int(lenBuf[2])<<16 | int(lenBuf[3])<<24
	if n < 0 || n > 1<<20 {
		return StatsResponse{}, fmt.Errorf("server: stats payload length %d", n)
	}
	payload := make([]byte, n)
	if err := readFull(c.br, payload); err != nil {
		return StatsResponse{}, err
	}
	var out StatsResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return StatsResponse{}, err
	}
	return out, nil
}

// SetDeadline bounds every subsequent round trip on the underlying
// connection (zero clears it). The cluster router sets a per-request
// deadline so a wedged backend costs a bounded wait, not a hang; after an
// expired deadline the connection's framing is unusable and it must be
// discarded, not reused.
func (c *TCPClient) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

func (c *TCPClient) Close() error { return c.conn.Close() }
