package server

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/esdsim/esd/internal/ecc"
)

// ErrLegacyProto reports a hello probe answered with StatusBadRequest: the
// peer is a protocol version-0 binary that does not know the 'H' op. The
// probe itself is harmless to the peer (its stream stays aligned — see the
// protocol comment in proto.go), but this client connection has consumed a
// junk status byte and must be discarded, not reused.
var ErrLegacyProto = errors.New("server: peer speaks protocol version 0")

// Hello negotiates the protocol version with the peer: one 'H' round trip
// returning the server's ProtoVersion. A version-0 peer yields
// ErrLegacyProto. The cluster router sends one hello per pooled connection
// pool (not per connection) to decide whether a node accepts traced
// frames.
func (c *TCPClient) Hello() (int, error) {
	st, err := c.roundTrip([]byte{OpHello, ProtoVersion})
	if err != nil {
		return 0, err
	}
	if st == StatusBadRequest {
		return 0, ErrLegacyProto
	}
	if st != StatusOK {
		return 0, statusErr(st)
	}
	var ver [1]byte
	if err := readFull(c.br, ver[:]); err != nil {
		return 0, err
	}
	return int(ver[0]), nil
}

// WriteTraced is Write over the version-1 'w' frame: the caller-minted
// trace ID rides the request and the response echoes it (returned in
// WriteResponse.Trace). Only valid against a version-1 server — probe with
// Hello first.
func (c *TCPClient) WriteTraced(trace, addr uint64, line ecc.Line) (WriteResponse, error) {
	var frame [1 + traceLen + writeReqLen]byte
	frame[0] = OpWriteTr
	putU64(frame[1:], trace)
	putU64(frame[1+traceLen:], addr)
	copy(frame[1+traceLen+8:], line[:])
	st, err := c.roundTrip(frame[:])
	if err != nil {
		return WriteResponse{}, err
	}
	if st != StatusOK {
		return WriteResponse{}, statusErr(st)
	}
	var payload [1 + 8 + 8 + traceLen]byte
	if err := readFull(c.br, payload[:]); err != nil {
		return WriteResponse{}, err
	}
	return WriteResponse{
		Dedup:     payload[0] == 1,
		PhysAddr:  getU64(payload[1:9]),
		LatencyNs: float64(getU64(payload[9:17])),
		Trace:     getU64(payload[17:]),
	}, nil
}

// ReadTraced is Read over the version-1 'r' frame (see WriteTraced).
func (c *TCPClient) ReadTraced(trace, addr uint64) (ReadResponse, error) {
	var frame [1 + traceLen + readReqLen]byte
	frame[0] = OpReadTr
	putU64(frame[1:], trace)
	putU64(frame[1+traceLen:], addr)
	st, err := c.roundTrip(frame[:])
	if err != nil {
		return ReadResponse{}, err
	}
	if st != StatusOK {
		return ReadResponse{}, statusErr(st)
	}
	var payload [1 + ecc.LineSize + 8 + traceLen]byte
	if err := readFull(c.br, payload[:]); err != nil {
		return ReadResponse{}, err
	}
	return ReadResponse{
		Hit:       payload[0] == 1,
		Data:      append([]byte(nil), payload[1:1+ecc.LineSize]...),
		LatencyNs: float64(getU64(payload[1+ecc.LineSize : 1+ecc.LineSize+8])),
		Trace:     getU64(payload[1+ecc.LineSize+8:]),
	}, nil
}

// WriteBatchTraced is WriteBatch over the version-1 'V' frame. The echoed
// trace ID is returned; per-op results land in res exactly as WriteBatch.
func (c *TCPClient) WriteBatchTraced(trace uint64, ops []BatchWriteOp, res []BatchWriteResult) (uint64, error) {
	if len(ops) > MaxBatchOps {
		return 0, fmt.Errorf("server: batch of %d ops exceeds MaxBatchOps=%d", len(ops), MaxBatchOps)
	}
	if len(res) != len(ops) {
		return 0, fmt.Errorf("server: results slice has %d entries for %d ops", len(res), len(ops))
	}
	frame := c.grow(1 + traceLen + 2 + len(ops)*writeReqLen)[:1+traceLen+2]
	frame[0] = OpWriteBatchTr
	putU64(frame[1:], trace)
	binary.LittleEndian.PutUint16(frame[1+traceLen:], uint16(len(ops)))
	for i := range ops {
		var rec [writeReqLen]byte
		putU64(rec[:8], ops[i].Addr)
		copy(rec[8:], ops[i].Line[:])
		frame = append(frame, rec[:]...)
	}
	st, err := c.roundTrip(frame)
	if err != nil {
		return 0, err
	}
	if st != StatusOK {
		return 0, statusErr(st)
	}
	var head [2 + traceLen]byte
	if err := readFull(c.br, head[:]); err != nil {
		return 0, err
	}
	if n := int(binary.LittleEndian.Uint16(head[:])); n != len(ops) {
		return 0, fmt.Errorf("server: batch response carries %d results for %d ops", n, len(ops))
	}
	echo := getU64(head[2:])
	payload := c.grow(len(ops) * writeBatchRecLen)
	if err := readFull(c.br, payload); err != nil {
		return 0, err
	}
	for i := range res {
		rec := payload[i*writeBatchRecLen:]
		if rec[0] != StatusOK {
			res[i] = BatchWriteResult{Err: statusErr(rec[0])}
			continue
		}
		res[i] = BatchWriteResult{
			Dedup:     rec[1] == 1,
			PhysAddr:  getU64(rec[2:10]),
			LatencyNs: float64(getU64(rec[10:18])),
		}
	}
	return echo, nil
}

// ReadBatchTraced is ReadBatch over the version-1 'v' frame (see
// WriteBatchTraced).
func (c *TCPClient) ReadBatchTraced(trace uint64, addrs []uint64, res []BatchReadResult) (uint64, error) {
	if len(addrs) > MaxBatchOps {
		return 0, fmt.Errorf("server: batch of %d ops exceeds MaxBatchOps=%d", len(addrs), MaxBatchOps)
	}
	if len(res) != len(addrs) {
		return 0, fmt.Errorf("server: results slice has %d entries for %d ops", len(res), len(addrs))
	}
	frame := c.grow(1 + traceLen + 2 + len(addrs)*readReqLen)
	frame[0] = OpReadBatchTr
	putU64(frame[1:], trace)
	binary.LittleEndian.PutUint16(frame[1+traceLen:], uint16(len(addrs)))
	for i, a := range addrs {
		putU64(frame[1+traceLen+2+i*readReqLen:], a)
	}
	st, err := c.roundTrip(frame)
	if err != nil {
		return 0, err
	}
	if st != StatusOK {
		return 0, statusErr(st)
	}
	var head [2 + traceLen]byte
	if err := readFull(c.br, head[:]); err != nil {
		return 0, err
	}
	if n := int(binary.LittleEndian.Uint16(head[:])); n != len(addrs) {
		return 0, fmt.Errorf("server: batch response carries %d results for %d ops", n, len(addrs))
	}
	echo := getU64(head[2:])
	payload := c.grow(len(addrs) * readBatchRecLen)
	if err := readFull(c.br, payload); err != nil {
		return 0, err
	}
	for i := range res {
		rec := payload[i*readBatchRecLen:]
		if rec[0] != StatusOK {
			res[i] = BatchReadResult{Err: statusErr(rec[0])}
			continue
		}
		res[i].Err = nil
		res[i].Hit = rec[1] == 1
		copy(res[i].Data[:], rec[2:2+ecc.LineSize])
		res[i].LatencyNs = float64(getU64(rec[2+ecc.LineSize : 2+ecc.LineSize+8]))
	}
	return echo, nil
}
