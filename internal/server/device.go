package server

import (
	"github.com/esdsim/esd/internal/media"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
)

// DeviceResponse is the /debug/device JSON document: the merged
// device-health view — wear shape, media energy split, live dedup
// effectiveness, and the per-bank rows behind the esdtop wear heatmap.
// It is built entirely from barrier-free state, so it answers even while
// shards are wedged mid-request.
type DeviceResponse struct {
	Scheme        string `json:"scheme"`
	Shards        int    `json:"shards"`
	BanksPerShard int    `json:"banks_per_shard"`

	MediaReads   uint64 `json:"media_reads"`
	MediaWrites  uint64 `json:"media_writes"`
	RowHits      uint64 `json:"row_hits"`
	LinesTouched uint64 `json:"lines_touched"`

	Wear     WearStatus       `json:"wear"`
	Energy   EnergyStatus     `json:"energy"`
	Dedup    DedupStatus      `json:"dedup"`
	Banks    []BankRow        `json:"banks"`
	Regions  []RegionRow      `json:"regions"`
	WearHist []nvm.WearBucket `json:"wear_hist"`

	// Hybrid describes the DRAM/PCM tier; nil on plain-PCM media.
	Hybrid *HybridStatus `json:"hybrid,omitempty"`
}

// HybridStatus is the hybrid DRAM/PCM tier section of /debug/device:
// hit/miss split, migration activity, write-ahead log traffic, and
// buffer occupancy, summed over shards.
type HybridStatus struct {
	DRAMHits       uint64  `json:"dram_hits"`
	DRAMMisses     uint64  `json:"dram_misses"`
	HitRate        float64 `json:"hit_rate"`
	Promotions     uint64  `json:"promotions"`
	Demotions      uint64  `json:"demotions"`
	Writebacks     uint64  `json:"writebacks"`
	WALAppends     uint64  `json:"wal_appends"`
	AbsorbedWrites uint64  `json:"absorbed_writes"`
	CapacityLines  int64   `json:"capacity_lines"`
	ResidentLines  int64   `json:"resident_lines"`
	DirtyLines     int64   `json:"dirty_lines"`
}

// HybridFromStats converts the media layer's tier statistics into the
// response section.
func HybridFromStats(st media.HybridStats) *HybridStatus {
	return &HybridStatus{
		DRAMHits:       st.DRAMHits,
		DRAMMisses:     st.DRAMMisses,
		HitRate:        st.HitRate(),
		Promotions:     st.Promotions,
		Demotions:      st.Demotions,
		Writebacks:     st.Writebacks,
		WALAppends:     st.WALAppends,
		AbsorbedWrites: st.AbsorbedWrites,
		CapacityLines:  st.CapacityLines,
		ResidentLines:  st.ResidentLines,
		DirtyLines:     st.DirtyLines,
	}
}

// WearStatus summarizes the per-line wear distribution.
type WearStatus struct {
	Max  uint64  `json:"max"`
	P99  uint64  `json:"p99"`
	Mean float64 `json:"mean"`
	// Skew is max/mean — the wear-leveling early-warning ratio (1.0 is
	// perfectly level).
	Skew float64 `json:"skew"`
}

// EnergyStatus is the media energy split.
type EnergyStatus struct {
	ReadNJ  float64 `json:"read_nj"`
	WriteNJ float64 `json:"write_nj"`
}

// DedupStatus is the live dedup-effectiveness view, from the per-shard
// published scheme counters.
type DedupStatus struct {
	Writes            uint64  `json:"writes"`
	Reads             uint64  `json:"reads"`
	DedupWrites       uint64  `json:"dedup_writes"`
	UniqueWrites      uint64  `json:"unique_writes"`
	HitRate           float64 `json:"hit_rate"`
	BytesSaved        uint64  `json:"bytes_saved"`
	CompareReads      uint64  `json:"compare_reads"`
	CompareMismatches uint64  `json:"compare_mismatches"`
	CollisionRate     float64 `json:"collision_rate"`
	ReferHOverflows   uint64  `json:"referh_overflows"`
}

// BankRow is one bank's wear-heatmap row.
type BankRow struct {
	Shard    int     `json:"shard"`
	Bank     int     `json:"bank"`
	Reads    uint64  `json:"reads"`
	Writes   uint64  `json:"writes"`
	RowHits  uint64  `json:"row_hits"`
	MaxWear  uint64  `json:"max_wear"`
	Lines    uint64  `json:"lines"`
	MeanWear float64 `json:"mean_wear"`
}

// RegionRow is one address region's write-locality row.
type RegionRow struct {
	Shard     int    `json:"shard"`
	Region    int    `json:"region"`
	FirstLine uint64 `json:"first_line"`
	Lines     uint64 `json:"lines"`
	Writes    uint64 `json:"writes"`
	MaxWear   uint64 `json:"max_wear"`
}

// DeviceFromHealth assembles the /debug/device document from per-shard
// health snapshots and a (live or final) scheme counter block. It is
// shared by the serving endpoint, the single-System metrics server and
// esdsim's -device-stats dump.
func DeviceFromHealth(scheme string, snaps []nvm.HealthSnapshot, st memctrl.SchemeStats) DeviceResponse {
	merged := nvm.MergeHealth(snaps)
	resp := DeviceResponse{
		Scheme:       scheme,
		Shards:       len(snaps),
		MediaReads:   merged.Reads,
		MediaWrites:  merged.Writes,
		RowHits:      merged.RowHits,
		LinesTouched: merged.LinesTouched,
		Wear: WearStatus{
			Max:  merged.MaxWear,
			P99:  merged.P99Wear,
			Mean: merged.MeanWear(),
			Skew: merged.WearSkew(),
		},
		Energy:   EnergyStatus{ReadNJ: merged.ReadEnergyNJ, WriteNJ: merged.WriteEnergyNJ},
		WearHist: merged.WearHist,
		Dedup: DedupStatus{
			Writes:            st.Writes,
			Reads:             st.Reads,
			DedupWrites:       st.DedupWrites,
			UniqueWrites:      st.UniqueWrites,
			HitRate:           st.DedupRate(),
			BytesSaved:        st.DedupWrites * 64,
			CompareReads:      st.CompareReads,
			CompareMismatches: st.CompareMismatches,
			ReferHOverflows:   st.ReferHOverflows,
		},
	}
	if st.CompareReads > 0 {
		resp.Dedup.CollisionRate = float64(st.CompareMismatches) / float64(st.CompareReads)
	}
	for sh, snap := range snaps {
		if len(snap.Banks) > resp.BanksPerShard {
			resp.BanksPerShard = len(snap.Banks)
		}
		for _, b := range snap.Banks {
			resp.Banks = append(resp.Banks, BankRow{
				Shard:    sh,
				Bank:     b.Bank,
				Reads:    b.Reads,
				Writes:   b.Writes,
				RowHits:  b.RowHits,
				MaxWear:  b.MaxWear,
				Lines:    b.LinesTouched,
				MeanWear: b.MeanWear(),
			})
		}
		for _, rg := range snap.Regions {
			resp.Regions = append(resp.Regions, RegionRow{
				Shard:     sh,
				Region:    rg.Region,
				FirstLine: rg.FirstLine,
				Lines:     rg.Lines,
				Writes:    rg.Writes,
				MaxWear:   rg.MaxWear,
			})
		}
	}
	return resp
}

// Device builds the live /debug/device document for the engine behind
// this server.
func (s *Server) Device() DeviceResponse {
	resp := DeviceFromHealth(s.eng.SchemeName(), s.eng.DeviceHealths(), s.eng.LiveSchemeStats())
	if hs, ok := s.eng.HybridStats(); ok {
		resp.Hybrid = HybridFromStats(hs)
	}
	return resp
}
