package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/shard"
)

// fuzzServer builds a Server around a live 2-shard engine without any
// listeners: FuzzTCPFrame feeds serveFrame directly, which is the entire
// per-frame parse/dispatch/encode path a hostile client can reach.
func fuzzServer(t testing.TB) (*Server, func()) {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 22
	eng, err := shard.New(cfg, "esd", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{
		eng:      eng,
		cfg:      Config{RequestTimeout: 2 * time.Second}.withDefaults(),
		conns:    make(map[net.Conn]struct{}),
		draining: make(chan struct{}),
		start:    time.Now(),
	}
	return s, func() { _ = eng.Close() }
}

// validWriteFrame returns a well-formed write request body (everything
// after the op byte).
func validWriteFrame(addr uint64) []byte {
	b := make([]byte, writeReqLen)
	putU64(b[:8], addr)
	for i := 8; i < len(b); i++ {
		b[i] = byte(i)
	}
	return b
}

// FuzzTCPFrame throws arbitrary byte streams at the binary protocol's
// frame handler. Malformed frames must produce an error status or drop the
// connection — never a panic, never a hang. The handler is driven exactly
// like handleConn drives it: one op byte, then serveFrame consumes the
// rest.
func FuzzTCPFrame(f *testing.F) {
	f.Add(append([]byte{OpWrite}, validWriteFrame(7)...))
	read := make([]byte, 1+readReqLen)
	read[0] = OpRead
	f.Add(read)
	f.Add([]byte{OpFlush})
	f.Add([]byte{OpStats})
	f.Add([]byte{OpWrite, 0x01, 0x02})                 // truncated write
	f.Add([]byte{OpRead})                              // truncated read
	f.Add([]byte{0xFF, 0x00, 0x01})                    // unknown op
	f.Add([]byte{OpWrite})                             // header only
	f.Add(bytes.Repeat([]byte{OpFlush}, 16))           // frame burst
	f.Add(append([]byte{0x00}, validWriteFrame(1)...)) // zero op

	srv, closeEng := fuzzServer(f)
	defer closeEng()

	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		// Drive frames until the handler drops the connection or the
		// stream runs dry — exactly handleConn's loop, minus the sockets.
		for {
			op, err := br.ReadByte()
			if err != nil {
				break
			}
			if !srv.serveFrame(br, bw, op) {
				break
			}
			if bw.Flush() != nil {
				break
			}
		}
	})
}

// validBatchFrame returns a well-formed 'B' body with n copies of one
// write record.
func validBatchFrame(n int) []byte {
	b := make([]byte, 2, 2+n*writeReqLen)
	binary.LittleEndian.PutUint16(b, uint16(n))
	for i := 0; i < n; i++ {
		b = append(b, validWriteFrame(uint64(i))...)
	}
	return b
}

// FuzzTCPFrameBatch focuses the fuzzer on the batch frames: truncated
// bodies, zero-op batches, oversized counts and garbage after the count
// must produce an error status or drop the connection — never a panic,
// never a hang, and every response the handler does write must be a
// well-formed frame (the handler returning true means the full response
// was written).
func FuzzTCPFrameBatch(f *testing.F) {
	f.Add(append([]byte{OpWriteBatch}, validBatchFrame(3)...))
	f.Add(append([]byte{OpWriteBatch}, validBatchFrame(0)...))
	f.Add([]byte{OpWriteBatch})                                                              // no count
	f.Add([]byte{OpWriteBatch, 0x05})                                                        // half a count
	f.Add([]byte{OpWriteBatch, 0x02, 0x00, 0xAA})                                            // count 2, truncated body
	f.Add([]byte{OpWriteBatch, 0xFF, 0xFF})                                                  // count 65535 > MaxBatchOps
	f.Add([]byte{OpReadBatch, 0x00, 0x00})                                                   // zero reads
	f.Add([]byte{OpReadBatch, 0x02, 0x00, 1, 2, 3})                                          // truncated addresses
	f.Add([]byte{OpReadBatch, 0xFF, 0x7F})                                                   // oversized read count
	f.Add([]byte{OpReadBatch, 0x01, 0x00, 0, 0, 0, 0, 0, 0, 0, 0, OpWriteBatch, 0x01, 0x00}) // read batch then truncated write batch

	srv, closeEng := fuzzServer(f)
	defer closeEng()

	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		for {
			op, err := br.ReadByte()
			if err != nil {
				break
			}
			if !srv.serveFrame(br, bw, op) {
				break
			}
			if bw.Flush() != nil {
				break
			}
		}
	})
}
