package server

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/shard"
)

// fuzzServer builds a Server around a live 2-shard engine without any
// listeners: FuzzTCPFrame feeds serveFrame directly, which is the entire
// per-frame parse/dispatch/encode path a hostile client can reach.
func fuzzServer(t testing.TB) (*Server, func()) {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 22
	eng, err := shard.New(cfg, "esd", shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{
		eng:      eng,
		cfg:      Config{RequestTimeout: 2 * time.Second}.withDefaults(),
		conns:    make(map[net.Conn]struct{}),
		draining: make(chan struct{}),
		start:    time.Now(),
	}
	return s, func() { _ = eng.Close() }
}

// validWriteFrame returns a well-formed write request body (everything
// after the op byte).
func validWriteFrame(addr uint64) []byte {
	b := make([]byte, writeReqLen)
	putU64(b[:8], addr)
	for i := 8; i < len(b); i++ {
		b[i] = byte(i)
	}
	return b
}

// FuzzTCPFrame throws arbitrary byte streams at the binary protocol's
// frame handler. Malformed frames must produce an error status or drop the
// connection — never a panic, never a hang. The handler is driven exactly
// like handleConn drives it: one op byte, then serveFrame consumes the
// rest.
func FuzzTCPFrame(f *testing.F) {
	f.Add(append([]byte{OpWrite}, validWriteFrame(7)...))
	read := make([]byte, 1+readReqLen)
	read[0] = OpRead
	f.Add(read)
	f.Add([]byte{OpFlush})
	f.Add([]byte{OpStats})
	f.Add([]byte{OpWrite, 0x01, 0x02})                 // truncated write
	f.Add([]byte{OpRead})                              // truncated read
	f.Add([]byte{0xFF, 0x00, 0x01})                    // unknown op
	f.Add([]byte{OpWrite})                             // header only
	f.Add(bytes.Repeat([]byte{OpFlush}, 16))           // frame burst
	f.Add(append([]byte{0x00}, validWriteFrame(1)...)) // zero op

	srv, closeEng := fuzzServer(f)
	defer closeEng()

	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		var out bytes.Buffer
		bw := bufio.NewWriter(&out)
		// Drive frames until the handler drops the connection or the
		// stream runs dry — exactly handleConn's loop, minus the sockets.
		for {
			op, err := br.ReadByte()
			if err != nil {
				break
			}
			if !srv.serveFrame(br, bw, op) {
				break
			}
			if bw.Flush() != nil {
				break
			}
		}
	})
}
