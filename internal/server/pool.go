package server

import (
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed is returned by Pool.Get after Close.
var ErrPoolClosed = errors.New("server: pool closed")

// Pool maintains reusable binary-protocol connections to one backend
// address. A TCPClient is single-owner (frames strictly alternate), so
// concurrent callers each borrow a connection with Get and return it with
// Put; the pool keeps up to MaxIdle returned connections around and dials
// on demand when the idle list is empty. Connections idle for longer than
// IdleTimeout are closed — lazily on Get/Put and explicitly via Reap —
// so a quiet pool does not pin file descriptors on the backend forever.
//
// The cluster router holds one Pool per backend node; N router
// connections fan out over N×MaxIdle backend connections at most.
type Pool struct {
	addr        string
	maxIdle     int
	idleTimeout time.Duration

	mu     sync.Mutex
	idle   []idleConn // LIFO: newest at the tail
	dials  uint64
	reuses uint64
	closed bool
}

type idleConn struct {
	c     *TCPClient
	since time.Time // when the connection went idle
}

// NewPool builds a pool dialing addr. maxIdle bounds the retained idle
// connections (default 8 when <= 0); idleTimeout bounds how long an idle
// connection is kept (default 30s when <= 0).
func NewPool(addr string, maxIdle int, idleTimeout time.Duration) *Pool {
	if maxIdle <= 0 {
		maxIdle = 8
	}
	if idleTimeout <= 0 {
		idleTimeout = 30 * time.Second
	}
	return &Pool{addr: addr, maxIdle: maxIdle, idleTimeout: idleTimeout}
}

// Addr returns the backend address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Get borrows a connection: the most recently returned idle one when
// fresh enough, otherwise a new dial. The caller must hand the connection
// back with Put (clean) or Discard (broken).
func (p *Pool) Get() (*TCPClient, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	p.reapLocked(time.Now())
	if n := len(p.idle); n > 0 {
		ic := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.reuses++
		p.mu.Unlock()
		return ic.c, nil
	}
	p.dials++
	p.mu.Unlock()
	return DialTCP(p.addr)
}

// Put returns a healthy connection to the idle list. Over-cap and
// post-Close returns close the connection instead. The read deadline is
// cleared so a stale per-request deadline cannot poison the next borrower.
func (p *Pool) Put(c *TCPClient) {
	if c == nil {
		return
	}
	_ = c.SetDeadline(time.Time{})
	now := time.Now()
	p.mu.Lock()
	p.reapLocked(now)
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	p.idle = append(p.idle, idleConn{c: c, since: now})
	p.mu.Unlock()
}

// Discard closes a connection whose framing can no longer be trusted
// (I/O error or deadline expiry mid-frame).
func (p *Pool) Discard(c *TCPClient) {
	if c != nil {
		_ = c.Close()
	}
}

// Reap closes idle connections that have been idle longer than the pool's
// IdleTimeout as of now, returning how many were closed. Get and Put reap
// opportunistically; callers with long quiet periods may drive it from a
// ticker.
func (p *Pool) Reap(now time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reapLocked(now)
}

// reapLocked drops expired idle connections (oldest live at the head).
func (p *Pool) reapLocked(now time.Time) int {
	cut := 0
	for cut < len(p.idle) && now.Sub(p.idle[cut].since) > p.idleTimeout {
		cut++
	}
	if cut == 0 {
		return 0
	}
	for i := 0; i < cut; i++ {
		_ = p.idle[i].c.Close()
	}
	p.idle = append(p.idle[:0], p.idle[cut:]...)
	return cut
}

// IdleLen returns the current idle-connection count.
func (p *Pool) IdleLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Dials returns the number of connections the pool has dialed.
func (p *Pool) Dials() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials
}

// Reuses returns the number of Gets served from the idle list.
func (p *Pool) Reuses() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reuses
}

// Close closes every idle connection and fails further Gets. Borrowed
// connections are closed as they come back through Put.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, ic := range idle {
		_ = ic.c.Close()
	}
}
