package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/shard"
	"github.com/esdsim/esd/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the HTTP listen address (":0" picks a free port).
	Addr string
	// TCPAddr, when non-empty, additionally serves the raw binary
	// protocol on this address.
	TCPAddr string
	// RequestTimeout bounds each request's wait for its shard (default
	// 2s). On expiry the HTTP API returns 504 and the TCP protocol
	// StatusTimeout.
	RequestTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when the engine
	// has telemetry enabled.
	Pprof bool
	// SlowRequestThreshold, when positive, logs every request (HTTP and
	// TCP, writes and reads) whose wall-clock service time reaches it.
	SlowRequestThreshold time.Duration
	// SlowLog receives slow-request lines and error-path flight-recorder
	// dumps (default os.Stderr).
	SlowLog io.Writer
	// DisableTracedFrames makes the TCP endpoint behave like a protocol
	// version-0 binary: the traced ops and the 'H' hello are answered with
	// StatusBadRequest, exactly as a pre-tracing build would answer any
	// unknown op. Exists for backward-compat testing (cluster_smoke.sh runs
	// a new router against a node in this mode) and as an escape hatch.
	DisableTracedFrames bool
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.SlowLog == nil {
		c.SlowLog = os.Stderr
	}
	return c
}

// Server fronts a shard.Engine over HTTP/JSON and (optionally) raw TCP.
//
// Flow control: enqueueing on a full shard queue is never waited out —
// the request is shed immediately (HTTP 429 / StatusOverloaded), keeping
// the accept loops responsive under overload. Requests that enqueue but
// exceed RequestTimeout waiting for their shard return 504 /
// StatusTimeout (the shard still executes them; only the response is
// abandoned).
type Server struct {
	eng *shard.Engine
	cfg Config

	httpLn net.Listener
	httpSr *http.Server
	tcpLn  net.Listener

	inflight sync.WaitGroup // TCP connection handlers
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	draining chan struct{}
	closedMu sync.Once

	start  time.Time
	slow   atomic.Uint64 // requests at/over SlowRequestThreshold
	slowMu sync.Mutex    // serializes slow-log lines and flight dumps

	// Rolling-window rate trackers, sampled lazily on each /statusz
	// render: between scrapes they cost nothing.
	rateWrites *telemetry.Rolling
	rateReads  *telemetry.Rolling
	rateShed   *telemetry.Rolling
}

// New listens and starts serving eng in background goroutines. The
// engine's lifetime stays with the caller: Shutdown drains the server but
// does not Close the engine.
func New(eng *shard.Engine, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:        eng,
		cfg:        cfg,
		conns:      make(map[net.Conn]struct{}),
		draining:   make(chan struct{}),
		start:      time.Now(),
		rateWrites: telemetry.NewRolling(rateWindow, rateSlots),
		rateReads:  telemetry.NewRolling(rateWindow, rateSlots),
		rateShed:   telemetry.NewRolling(rateWindow, rateSlots),
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s.httpLn = ln
	s.httpSr = &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = s.httpSr.Serve(ln) }()
	if cfg.TCPAddr != "" {
		tln, err := net.Listen("tcp", cfg.TCPAddr)
		if err != nil {
			_ = s.httpSr.Close()
			return nil, fmt.Errorf("server: listen tcp %s: %w", cfg.TCPAddr, err)
		}
		s.tcpLn = tln
		go s.acceptTCP()
	}
	return s, nil
}

// Addr returns the bound HTTP address.
func (s *Server) Addr() string { return s.httpLn.Addr().String() }

// URL returns the HTTP base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// TCPAddr returns the bound binary-protocol address ("" when disabled).
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// Shutdown gracefully drains the server: stop accepting, finish in-flight
// HTTP requests and TCP frames, then flush the engine so every accepted
// write reached the device model. On ctx expiry remaining connections are
// forcibly closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closedMu.Do(func() { close(s.draining) })
	var firstErr error
	if s.tcpLn != nil {
		_ = s.tcpLn.Close()
	}
	if err := s.httpSr.Shutdown(ctx); err != nil {
		firstErr = err
		_ = s.httpSr.Close()
	}
	// Wait for TCP handlers; on ctx expiry cut the connections and wait
	// again (handlers exit on read error).
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connMu.Unlock()
		<-done
		if firstErr == nil {
			firstErr = ctx.Err()
		}
	}
	if err := s.eng.Flush(); err != nil && firstErr == nil && !errors.Is(err, shard.ErrClosed) {
		firstErr = err
	}
	return firstErr
}

func (s *Server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/write", s.handleWrite)
	mux.HandleFunc("/v1/read", s.handleRead)
	mux.HandleFunc("/v1/flush", s.handleFlush)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Statusz())
	})
	// Registered before the catch-all /debug/ telemetry mount below:
	// ServeMux routes the longer pattern first, so the flight recorder
	// works with or without -metrics.
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		recs := s.eng.FlightRecords()
		if recs == nil {
			recs = []telemetry.FlightRecord{}
		}
		s.writeJSON(w, http.StatusOK, recs)
	})
	mux.HandleFunc("/debug/device", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Device())
	})
	// Raw per-shard health snapshots, shaped for nvm.MergeHealth: the
	// cluster router scrapes this from every member and merges the fleet
	// into one device view (/debug/device is the human-shaped rollup).
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.eng.DeviceHealths())
	})
	if reg := s.eng.Registry(); reg != nil {
		mux.Handle("/metrics", telemetry.Handler(reg, s.cfg.Pprof))
		mux.Handle("/debug/", telemetry.Handler(reg, s.cfg.Pprof))
	}
	return mux
}

// BeginDrain flips the server unready — /readyz answers 503 and new TCP
// connections are rejected — without closing the listeners or touching
// in-flight work. It is the advance drain announcement: a load balancer or
// cluster router polling /readyz stops sending traffic within one probe
// interval, after which Shutdown proceeds with an already-quiet server.
// Idempotent; Shutdown implies it.
func (s *Server) BeginDrain() {
	s.closedMu.Do(func() { close(s.draining) })
}

// Ready reports serving readiness: true until Shutdown begins draining.
func (s *Server) Ready() bool {
	select {
	case <-s.draining:
		return false
	default:
		return true
	}
}

// Rolling-rate window for the /statusz rates section: ~15 s of history in
// 1.5 s sub-windows smooths dashboard polling without hiding bursts.
const (
	rateWindow = 15 * time.Second
	rateSlots  = 10
)

// RateStatus is the /statusz rolling-window throughput section, derived
// from the engine's live op counters sampled at each render.
type RateStatus struct {
	WindowS    float64 `json:"window_s"`
	WritesPerS float64 `json:"writes_per_s"`
	ReadsPerS  float64 `json:"reads_per_s"`
	ShedPerS   float64 `json:"shed_per_s"`
}

// DeviceStatus is the compact device section of /statusz (the full
// per-bank view lives at /debug/device).
type DeviceStatus struct {
	MediaReads    uint64  `json:"media_reads"`
	MediaWrites   uint64  `json:"media_writes"`
	MaxWear       uint64  `json:"max_wear"`
	MeanWear      float64 `json:"mean_wear"`
	P99Wear       uint64  `json:"p99_wear"`
	WearSkew      float64 `json:"wear_skew"`
	EnergyReadNJ  float64 `json:"energy_read_nj"`
	EnergyWriteNJ float64 `json:"energy_write_nj"`
	DedupHitRate  float64 `json:"dedup_hit_rate"`
	BytesSaved    uint64  `json:"dedup_bytes_saved"`
}

// StageStatus is one pipeline stage's latency summary in /statusz.
type StageStatus struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// StatuszResponse is the /statusz JSON document: the live serving state —
// queue depths, shed counts, coalescer state, per-stage latency
// percentiles — gathered without any engine barrier, so it answers even
// while shards are wedged.
type StatuszResponse struct {
	Scheme          string                 `json:"scheme"`
	Shards          int                    `json:"shards"`
	Ready           bool                   `json:"ready"`
	UptimeS         float64                `json:"uptime_s"`
	QueueDepths     []int                  `json:"queue_depths"`
	QueueCap        int                    `json:"queue_cap"`
	Shed            uint64                 `json:"shed_requests"`
	Coalescing      bool                   `json:"coalescing"`
	Coalesced       uint64                 `json:"coalesced_writes"`
	Tracing         bool                   `json:"tracing"`
	SlowThresholdMs float64                `json:"slow_threshold_ms"`
	SlowRequests    uint64                 `json:"slow_requests"`
	FlightRecords   int                    `json:"flight_records"`
	Rates           *RateStatus            `json:"rates,omitempty"`
	Device          *DeviceStatus          `json:"device,omitempty"`
	Hybrid          *HybridStatus          `json:"hybrid,omitempty"`
	Stages          map[string]StageStatus `json:"stages,omitempty"`
}

// Statusz builds the /statusz document.
func (s *Server) Statusz() StatuszResponse {
	resp := StatuszResponse{
		Scheme:          s.eng.SchemeName(),
		Shards:          s.eng.NumShards(),
		Ready:           s.Ready(),
		UptimeS:         time.Since(s.start).Seconds(),
		QueueDepths:     s.eng.QueueLens(),
		QueueCap:        s.eng.QueueCap(),
		Shed:            s.eng.Shed(),
		Coalescing:      s.eng.CoalesceEnabled(),
		Coalesced:       s.eng.Coalesced(),
		Tracing:         s.eng.TracingEnabled(),
		SlowThresholdMs: float64(s.cfg.SlowRequestThreshold) / float64(time.Millisecond),
		SlowRequests:    s.slow.Load(),
		FlightRecords:   len(s.eng.FlightRecords()),
	}
	now := time.Now()
	writes, reads, _ := s.eng.LiveOps()
	resp.Rates = &RateStatus{
		WindowS:    s.rateWrites.Window().Seconds(),
		WritesPerS: s.rateWrites.ObserveRate(now, writes),
		ReadsPerS:  s.rateReads.ObserveRate(now, reads),
		ShedPerS:   s.rateShed.ObserveRate(now, resp.Shed),
	}
	h := s.eng.DeviceHealth()
	st := s.eng.LiveSchemeStats()
	resp.Device = &DeviceStatus{
		MediaReads:    h.Reads,
		MediaWrites:   h.Writes,
		MaxWear:       h.MaxWear,
		MeanWear:      h.MeanWear(),
		P99Wear:       h.P99Wear,
		WearSkew:      h.WearSkew(),
		EnergyReadNJ:  h.ReadEnergyNJ,
		EnergyWriteNJ: h.WriteEnergyNJ,
		DedupHitRate:  st.DedupRate(),
		BytesSaved:    st.DedupWrites * 64,
	}
	if hs, ok := s.eng.HybridStats(); ok {
		resp.Hybrid = HybridFromStats(hs)
	}
	if hists, ok := s.eng.StageSnapshot(); ok {
		resp.Stages = make(map[string]StageStatus, len(hists))
		for i := range hists {
			h := &hists[i]
			if h.Count() == 0 {
				continue
			}
			resp.Stages[telemetry.Stage(i).String()] = StageStatus{
				Count:  h.Count(),
				MeanNs: h.Mean().Nanoseconds(),
				P50Ns:  h.Percentile(0.5).Nanoseconds(),
				P99Ns:  h.Percentile(0.99).Nanoseconds(),
			}
		}
	}
	return resp
}

// noteRequest applies the slow-request policy to one completed request.
func (s *Server) noteRequest(proto, op string, tc telemetry.TraceCtx, addr uint64, wall time.Duration, err error) {
	if s.cfg.SlowRequestThreshold <= 0 || wall < s.cfg.SlowRequestThreshold {
		return
	}
	s.slow.Add(1)
	status := "ok"
	if err != nil {
		status = err.Error()
	}
	s.slowMu.Lock()
	fmt.Fprintf(s.cfg.SlowLog, "server: slow request trace=%d %s %s addr=%d shard=%d wall=%s status=%s\n",
		tc.TraceID, proto, op, addr, s.eng.ShardOf(addr), wall, status)
	s.slowMu.Unlock()
}

// noteBatch applies the slow-request policy to one completed batch frame.
// Exactly one of wops/addrs is non-nil (write vs read batch). Unlike the
// scalar path, a slow batch line reports the batch size and its distinct-
// shard fan-out — the two numbers that say whether the frame was slow
// because it was big or because it serialized behind one hot shard. The
// fan-out map is built only inside the slow branch, so the hot path stays
// allocation-free.
func (s *Server) noteBatch(proto, op string, tc telemetry.TraceCtx, wops []shard.WriteBatchOp, addrs []uint64, wall time.Duration, err error) {
	if s.cfg.SlowRequestThreshold <= 0 || wall < s.cfg.SlowRequestThreshold {
		return
	}
	s.slow.Add(1)
	shards := make(map[int]struct{}, 8)
	for i := range wops {
		shards[s.eng.ShardOf(wops[i].Addr)] = struct{}{}
	}
	for _, a := range addrs {
		shards[s.eng.ShardOf(a)] = struct{}{}
	}
	status := "ok"
	if err != nil {
		status = err.Error()
	}
	s.slowMu.Lock()
	fmt.Fprintf(s.cfg.SlowLog, "server: slow request trace=%d %s %s batch=%d shards=%d wall=%s status=%s\n",
		tc.TraceID, proto, op, len(wops)+len(addrs), len(shards), wall, status)
	s.slowMu.Unlock()
}

// dumpFlight writes the tail of the flight recorder to the slow log — the
// black-box dump accompanying an unexpected server error.
func (s *Server) dumpFlight(reason string) {
	recs := s.eng.FlightRecords()
	const tail = 8
	if len(recs) > tail {
		recs = recs[len(recs)-tail:]
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	fmt.Fprintf(s.cfg.SlowLog, "server: flight recorder dump (%s), last %d records:\n", reason, len(recs))
	enc := json.NewEncoder(s.cfg.SlowLog)
	for i := range recs {
		_ = enc.Encode(&recs[i])
	}
}

// DumpFlightRecorder writes the full flight-recorder contents (every
// shard's ring, oldest first) to w as JSONL — one FlightRecord per line,
// decodable with encoding/json. esdserve calls it on SIGQUIT.
func (s *Server) DumpFlightRecorder(w io.Writer) {
	recs := s.eng.FlightRecords()
	fmt.Fprintf(w, "server: flight recorder dump, %d records:\n", len(recs))
	enc := json.NewEncoder(w)
	for i := range recs {
		_ = enc.Encode(&recs[i])
	}
}

// WriteRequest is the /v1/write JSON body.
type WriteRequest struct {
	Addr uint64 `json:"addr"`
	// Data is the base64-encoded 64-byte line.
	Data []byte `json:"data"`
}

// WriteResponse is the /v1/write JSON reply. LatencyNs is the simulated
// write-path service latency (not the wire round trip). Trace is the
// request's trace ID: grep it in the event trace or the flight recorder to
// see where the request's latency went.
type WriteResponse struct {
	Dedup     bool    `json:"dedup"`
	PhysAddr  uint64  `json:"phys_addr"`
	LatencyNs float64 `json:"latency_ns"`
	Shard     int     `json:"shard"`
	Trace     uint64  `json:"trace,omitempty"`
}

// ReadResponse is the /v1/read JSON reply.
type ReadResponse struct {
	Hit       bool    `json:"hit"`
	Data      []byte  `json:"data"`
	LatencyNs float64 `json:"latency_ns"`
	Shard     int     `json:"shard"`
	Trace     uint64  `json:"trace,omitempty"`
}

// StatsResponse is the /v1/stats JSON reply: the merged engine summary
// plus serving-side counters.
type StatsResponse struct {
	Scheme       string  `json:"scheme"`
	Shards       int     `json:"shards"`
	Writes       uint64  `json:"writes"`
	Reads        uint64  `json:"reads"`
	DedupWrites  uint64  `json:"dedup_writes"`
	UniqueWrites uint64  `json:"unique_writes"`
	DedupRate    float64 `json:"dedup_rate"`
	DeviceWrites uint64  `json:"device_writes"`
	WriteMeanNs  float64 `json:"write_mean_ns"`
	WriteP99Ns   float64 `json:"write_p99_ns"`
	ReadMeanNs   float64 `json:"read_mean_ns"`
	ReadP99Ns    float64 `json:"read_p99_ns"`
	EnergyNJ     float64 `json:"energy_nj"`
	MetadataNVMM int64   `json:"metadata_nvmm_bytes"`
	MaxWear      uint64  `json:"max_wear"`
	Coalesced    uint64  `json:"coalesced_writes"`
	Shed         uint64  `json:"shed_requests"`
	SimNowNs     float64 `json:"sim_now_ns"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// mapErr translates engine errors to HTTP status codes. An unexpected
// error (the 500 path) also dumps the flight-recorder tail to the slow
// log, so the pipeline state that led to it is preserved.
func (s *Server) mapErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		w.Header().Set("Retry-After", "0")
		http.Error(w, "shard queue full", http.StatusTooManyRequests)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "request timed out", http.StatusGatewayTimeout)
	case errors.Is(err, shard.ErrClosed):
		http.Error(w, "server draining", http.StatusServiceUnavailable)
	default:
		s.dumpFlight("error: " + err.Error())
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req WriteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Data) != ecc.LineSize {
		http.Error(w, fmt.Sprintf("data must be %d bytes, got %d", ecc.LineSize, len(req.Data)), http.StatusBadRequest)
		return
	}
	var line ecc.Line
	copy(line[:], req.Data)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	tc := s.eng.NewTrace()
	tc.StartNs = time.Now().UnixNano()
	out, err := s.eng.TryWriteTraced(ctx, req.Addr, line, tc)
	s.noteRequest("http", "write", tc, req.Addr, time.Since(time.Unix(0, tc.StartNs)), err)
	if err != nil {
		s.mapErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, WriteResponse{
		Dedup:     out.Deduplicated,
		PhysAddr:  out.PhysAddr,
		LatencyNs: out.Breakdown.Total().Nanoseconds(),
		Shard:     s.eng.ShardOf(req.Addr),
		Trace:     tc.TraceID,
	})
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	addr, err := strconv.ParseUint(r.URL.Query().Get("addr"), 10, 64)
	if err != nil {
		http.Error(w, "addr query parameter must be an unsigned integer", http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	tc := s.eng.NewTrace()
	tc.StartNs = time.Now().UnixNano()
	res, err := s.eng.TryReadTraced(ctx, addr, tc)
	s.noteRequest("http", "read", tc, addr, time.Since(time.Unix(0, tc.StartNs)), err)
	if err != nil {
		s.mapErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ReadResponse{
		Hit:       res.Hit,
		Data:      res.Data[:],
		LatencyNs: res.Lat.Nanoseconds(),
		Shard:     s.eng.ShardOf(addr),
		Trace:     tc.TraceID,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := s.eng.Flush(); err != nil {
		s.mapErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sum, err := s.eng.Summary()
	if err != nil {
		s.mapErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, statsFrom(s.eng, sum))
}

func statsFrom(eng *shard.Engine, sum shard.Summary) StatsResponse {
	return StatsResponse{
		Scheme:       eng.SchemeName(),
		Shards:       sum.Shards,
		Writes:       sum.Scheme.Writes,
		Reads:        sum.Scheme.Reads,
		DedupWrites:  sum.Scheme.DedupWrites,
		UniqueWrites: sum.Scheme.UniqueWrites,
		DedupRate:    sum.Scheme.DedupRate(),
		DeviceWrites: sum.DeviceWrites,
		WriteMeanNs:  sum.WriteHist.Mean().Nanoseconds(),
		WriteP99Ns:   sum.WriteHist.Percentile(0.99).Nanoseconds(),
		ReadMeanNs:   sum.ReadHist.Mean().Nanoseconds(),
		ReadP99Ns:    sum.ReadHist.Percentile(0.99).Nanoseconds(),
		EnergyNJ:     sum.Energy.Total(),
		MetadataNVMM: sum.MetadataNVMM,
		MaxWear:      sum.MaxWear,
		Coalesced:    sum.Coalesced,
		Shed:         sum.Shed,
		SimNowNs:     sum.Now.Nanoseconds(),
	}
}
