// Package dedup implements the deduplication schemes the ESD paper
// compares against, plus the plumbing all deduplicating write paths share:
//
//   - Baseline: counter-mode encryption, no deduplication (§IV-A);
//   - Dedup_SHA1: traditional full inline deduplication keyed by SHA-1
//     digests, with the full fingerprint store resident in NVMM;
//   - DeWrite (MICRO'18): CRC fingerprints, a duplication predictor, and
//     speculative encryption in parallel with fingerprinting for
//     predicted-unique lines — still full deduplication.
//
// ESD itself lives in package core and composes the same Base plumbing.
package dedup

import (
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
)

// Base bundles the machinery shared by every deduplicating scheme: the
// address-mapping table, the physical line allocator, per-line reference
// counts, and the common read path. It is meant to be embedded.
type Base struct {
	Env   *memctrl.Env
	AMT   *memctrl.AMT
	Alloc *memctrl.Allocator
	Refs  *memctrl.RefStore
	// OnFree, if set, is invoked when a physical line's reference count
	// reaches zero, so schemes can purge fingerprint entries that point at
	// the recycled line (stale entries would deduplicate onto freed
	// storage and corrupt data).
	OnFree func(phys uint64)

	St memctrl.SchemeStats

	// ctBuf is the scratch line StoreUnique encrypts into. Schemes are
	// single-threaded per instance, so one buffer keeps the steady-state
	// write path free of per-call line copies on the heap.
	ctBuf ecc.Line
}

// NewBase wires the shared machinery onto env.
func NewBase(env *memctrl.Env) Base {
	return Base{
		Env:   env,
		AMT:   memctrl.NewAMT(env, env.Cfg.Meta.AMTCacheBytes),
		Alloc: memctrl.NewAllocator(env.DataLines),
		Refs:  memctrl.NewRefStore(),
	}
}

// MapWrite points logical at phys, maintaining reference counts and freeing
// (and announcing) physical lines that drop to zero references. It returns
// the visible AMT latency.
func (b *Base) MapWrite(logical, phys uint64, at sim.Time) sim.Time {
	prev, had, lat := b.AMT.Update(logical, phys, at)
	if had && prev == phys {
		return lat
	}
	b.Env.Step(memctrl.StepAMTUpdated)
	b.Refs.Inc(phys)
	if had {
		if b.Refs.Dec(prev) {
			b.Alloc.Free(prev)
			if b.OnFree != nil {
				b.OnFree(prev)
			}
		}
	}
	return lat
}

// StoreUnique encrypts data, writes it to a freshly allocated physical
// line at time at, and installs the logical mapping. Encryption *latency*
// is the caller's responsibility (schemes overlap it differently);
// encryption energy is charged here.
func (b *Base) StoreUnique(logical uint64, data *ecc.Line, at sim.Time) (phys uint64, wr nvm.WriteResult, mapLat sim.Time) {
	phys = b.Alloc.Alloc()
	b.ctBuf = *data
	counter := b.Env.Crypto.EncryptInPlace(phys, &b.ctBuf)
	b.Env.Energy.Crypto += b.Env.Cfg.Crypto.EncryptEnergy
	b.Env.Step(memctrl.StepCounterBumped)
	wr = b.Env.Device.Write(phys, &b.ctBuf, at)
	mapLat = b.MapWrite(logical, phys, at)
	mapLat += b.Env.IntegrityUpdate(phys, counter, at)
	b.St.UniqueWrites++
	return phys, wr, mapLat
}

// StorePrepared commits a speculatively encrypted line: the caller already
// holds the ciphertext and counter for phys (from EncryptSpeculative) and
// the corresponding encryption energy has been charged at speculation
// time. Used by DeWrite's parallel predicted-unique path.
func (b *Base) StorePrepared(logical, phys uint64, ct *ecc.Line, counter uint64, at sim.Time) (wr nvm.WriteResult, mapLat sim.Time) {
	b.Env.Crypto.Commit(phys, counter)
	b.Env.Step(memctrl.StepCounterBumped)
	wr = b.Env.Device.Write(phys, ct, at)
	mapLat = b.MapWrite(logical, phys, at)
	mapLat += b.Env.IntegrityUpdate(phys, counter, at)
	b.St.UniqueWrites++
	return wr, mapLat
}

// DedupHit eliminates a duplicate write by remapping logical onto the
// existing physical line. It returns the visible metadata latency. The
// duplicate reference doubles as the hybrid tier's placement signal:
// duplicate-heavy lines are exactly the ones CARAM wants in DRAM.
func (b *Base) DedupHit(logical, phys uint64, at sim.Time) sim.Time {
	lat := b.MapWrite(logical, phys, at)
	b.St.DedupWrites++
	b.Env.NoteDupRef(phys, at)
	return lat
}

// ReadPath is the shared demand-read implementation: AMT resolve, media
// read, counter-mode decrypt (whose pad generation overlaps the media read
// and therefore adds no latency).
func (b *Base) ReadPath(logical uint64, at sim.Time) memctrl.ReadOutcome {
	b.St.Reads++
	_, feEnd := b.Env.Frontend.Reserve(at, b.Env.Cfg.Meta.SRAMLatency)
	phys, ok, lat := b.AMT.Lookup(logical, feEnd)
	t := feEnd + lat
	if !ok {
		// Never-written logical line: nothing to fetch.
		return memctrl.ReadOutcome{Done: t, Hit: false}
	}
	ct, found, rr := b.Env.Device.Read(phys, t)
	out := memctrl.ReadOutcome{Done: rr.Done, Hit: found}
	if found {
		// Counter authentication overlaps the media read; only the excess
		// beyond the media latency delays the data release.
		if vlat := b.Env.IntegrityVerify(phys, t); t+vlat > out.Done {
			out.Done = t + vlat
		}
		b.Env.Crypto.DecryptInPlace(phys, &ct)
		out.Data = ct
	}
	return out
}

// CrashBase performs the shared part of a power-failure simulation: the
// eADR domain drains dirty AMT entries to NVMM, the volatile cache is
// lost, and the media's volatile side (the hybrid tier's DRAM buffer)
// runs its recovery replay and drops. Scheme-specific volatile
// structures are the scheme's job.
func (b *Base) CrashBase(now sim.Time) {
	b.AMT.CrashFlush(now)
	if b.Env.Integrity != nil {
		b.Env.Integrity.DropCache()
	}
	b.Env.CrashMedia()
}

// LogicalPhysical reports the logical bytes mapped and the physical bytes
// of live data lines, for effective-capacity accounting.
func (b *Base) LogicalPhysical() (logical, physical int64) {
	return int64(b.AMT.Entries()) * 64, int64(b.Alloc.Live()) * 64
}

// MetadataSRAMBase returns the SRAM bytes used by the shared AMT cache.
func (b *Base) MetadataSRAMBase() int64 {
	return int64(b.Env.Cfg.Meta.AMTCacheBytes)
}

// Stats returns a copy of the scheme counters.
func (b *Base) Stats() memctrl.SchemeStats { return b.St }

// Tick is a no-op for schemes without periodic maintenance.
func (b *Base) Tick(sim.Time) {}

// TickInterval reports no periodic maintenance by default.
func (b *Base) TickInterval() sim.Time { return 0 }
