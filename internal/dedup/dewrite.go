package dedup

import (
	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/fingerprint"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// DeWrite reproduces the MICRO'18 scheme the paper uses as its
// state-of-the-art comparison: full inline deduplication with lightweight
// CRC fingerprints, a per-address duplication predictor, and speculative
// encryption performed in parallel with fingerprinting when a line is
// predicted unique. Because CRC is weak, every candidate match is verified
// by reading the stored line and comparing byte by byte.
//
// The prediction outcomes map onto the paper's Fig. 4: T1 (predicted dup,
// is dup) serializes CRC -> lookup -> verify; F2 (predicted dup, actually
// unique) additionally pays serial encryption at the end; T3 (predicted
// unique, is unique) hides CRC under encryption; F4 (predicted unique,
// actually dup) wastes the speculative encryption.
type DeWrite struct {
	Base
	fper      fingerprint.Fingerprinter
	fpCache   *cache.Cache[uint64] // CRC -> candidate physical line
	fpIndex   map[uint64]uint64    // NVMM-resident index: CRC -> candidate
	physFP    map[uint64]uint64    // reverse map for freeing
	predictor []uint8              // per-address 2-bit saturating counters
	// global is a wider saturating counter tracking the overall duplicate
	// rate; it breaks ties when the per-address entry is not confident
	// (a weak per-address signal is common because duplication is a
	// property of content, not address).
	global int
}

// NewDeWrite constructs the DeWrite scheme on env.
func NewDeWrite(env *memctrl.Env) *DeWrite {
	s := &DeWrite{
		Base:      NewBase(env),
		fper:      fingerprint.New(fingerprint.KindCRC32, env.Cfg.FP),
		fpIndex:   make(map[uint64]uint64),
		physFP:    make(map[uint64]uint64),
		predictor: make([]uint8, env.Cfg.DeWrite.PredictorEntries),
	}
	entries := env.Cfg.DeWrite.FPCacheBytes / env.Cfg.DeWrite.FPEntryBytes
	if entries < 1 {
		entries = 1
	}
	s.fpCache = cache.New[uint64](entries, 8, cache.LRU)
	if env.Tel != nil {
		s.fpCache.SetProbe(env.Tel.CacheProbe("dewrite-fp"))
	}
	// Entries start weak (1), not confidently-unique (0): an address never
	// seen should defer to the global duplicate-rate majority.
	for i := range s.predictor {
		s.predictor[i] = 1
	}
	s.OnFree = s.purge
	return s
}

func (s *DeWrite) purge(phys uint64) {
	crc, ok := s.physFP[phys]
	if !ok {
		return
	}
	delete(s.physFP, phys)
	// Only drop the index entry if it still points at the freed line;
	// a CRC bucket may have been re-pointed at newer content.
	if cur, ok := s.fpIndex[crc]; ok && cur == phys {
		delete(s.fpIndex, crc)
		s.fpCache.Delete(crc)
	}
}

// Name implements memctrl.Scheme.
func (s *DeWrite) Name() string { return "dewrite" }

func (s *DeWrite) predIndex(logical uint64) int {
	h := (logical ^ (logical >> 17)) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(s.predictor)))
}

// globalMax bounds the global history counter (centered at globalMax/2).
const globalMax = 256

func (s *DeWrite) predictDup(logical uint64) bool {
	switch s.predictor[s.predIndex(logical)] {
	case 0:
		return false // confidently unique
	case 3:
		return true // confidently duplicate
	default:
		// Weak local signal: follow the global duplicate-rate majority.
		return s.global >= globalMax/2
	}
}

func (s *DeWrite) train(logical uint64, wasDup bool) {
	i := s.predIndex(logical)
	if wasDup {
		if s.predictor[i] < 3 {
			s.predictor[i]++
		}
		if s.global < globalMax {
			s.global++
		}
	} else {
		if s.predictor[i] > 0 {
			s.predictor[i]--
		}
		if s.global > 0 {
			s.global--
		}
	}
}

// lookupCandidate resolves the CRC to a candidate physical line, charging
// the fingerprint-cache probe (already reserved by the caller) and, on a
// cache miss, the serial fingerprint fetch from NVMM.
func (s *DeWrite) lookupCandidate(crc uint64, t sim.Time, bd *stats.Breakdown) (phys uint64, found bool, now sim.Time) {
	if phys, hit := s.fpCache.Get(crc); hit {
		s.St.FPCacheHits++
		return phys, true, t
	}
	s.St.FPCacheMisses++
	rr := s.Env.Device.ReadMeta(s.Env.MetaLineFor(crc), t)
	s.St.FPNVMMLookups++
	bd.FPLookupNVMM += rr.Done - t
	phys, found = s.fpIndex[crc]
	if found {
		s.fpCache.Put(crc, phys)
	}
	return phys, found, rr.Done
}

// verify reads the candidate line and byte-compares it against data.
func (s *DeWrite) verify(candidate uint64, data *ecc.Line, t sim.Time, bd *stats.Breakdown) (equal bool, now sim.Time) {
	ct, ok, rr := s.Env.Device.Read(candidate, t)
	s.St.CompareReads++
	s.Env.ChargeCompare()
	now = rr.Done + s.Env.Cfg.FP.CompareTime
	bd.ReadCompare += now - t
	if !ok {
		s.Env.Tel.OnCompare(false)
		return false, now
	}
	s.Env.Crypto.DecryptInPlace(candidate, &ct)
	if ct != *data {
		s.St.CompareMismatches++
		s.Env.Tel.OnCompare(true)
		return false, now
	}
	s.Env.Tel.OnCompare(false)
	return true, now
}

// Write implements memctrl.Scheme.
func (s *DeWrite) Write(logical uint64, data *ecc.Line, at sim.Time) memctrl.WriteOutcome {
	s.St.Writes++
	cfg := s.Env.Cfg
	d := s.fper.Fingerprint(data)
	// CRC is computed for every line, duplicate or not (§II-B), so its
	// energy is unconditional.
	s.Env.Energy.Fingerprint += s.fper.Energy()
	s.Env.ChargeSRAM()

	var bd stats.Breakdown
	crcProbe := s.fper.Latency() + cfg.Meta.SRAMLatency

	if s.predictDup(logical) {
		s.St.PredDup++
		// Serial path: CRC -> probe -> (NVMM lookup) -> verify read.
		feStart, feEnd := s.Env.Frontend.Reserve(at, crcProbe)
		bd.FPCompute = (feStart - at) + s.fper.Latency()
		bd.FPLookupSRAM = cfg.Meta.SRAMLatency
		t := feEnd
		candidate, found, t := s.lookupCandidate(d.Short, t, &bd)
		if found {
			equal, tv := s.verify(candidate, data, t, &bd)
			t = tv
			if equal {
				mapLat := s.DedupHit(logical, candidate, t)
				bd.Metadata = mapLat
				s.train(logical, true)
				s.Env.Tel.OnWrite(s.Name(), telemetry.DecPredDupDup, logical, candidate, true, at, t+mapLat, &bd)
				return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: candidate}
			}
		}
		// F2: predicted duplicate but unique — serial encryption tail.
		s.St.Mispredicts++
		s.train(logical, false)
		bd.Encrypt = cfg.Crypto.EncryptLatency
		phys, wr, mapLat := s.StoreUnique(logical, data, t+cfg.Crypto.EncryptLatency)
		s.installFP(d.Short, phys, wr.AcceptedAt)
		bd.Queue += wr.Stall
		bd.Media = wr.ServiceLatency
		bd.Metadata = mapLat
		done := wr.AcceptedAt + wr.ServiceLatency
		s.Env.Tel.OnWrite(s.Name(), telemetry.DecPredDupUnique, logical, phys, false, at, done, &bd)
		return memctrl.WriteOutcome{Done: done, Breakdown: bd, PhysAddr: phys}
	}

	// Predicted unique: CRC and encryption run in parallel — the pipeline
	// is occupied by the CRC+probe only, while the dedicated AES engine
	// produces the ciphertext on the side.
	s.St.PredUnique++
	feStart, feEnd := s.Env.Frontend.Reserve(at, crcProbe)
	bd.FPCompute = (feStart - at) + s.fper.Latency()
	bd.FPLookupSRAM = cfg.Meta.SRAMLatency
	specPhys := s.Alloc.Alloc()
	s.ctBuf = *data
	specCounter := s.Env.Crypto.EncryptSpeculativeInPlace(specPhys, &s.ctBuf)
	s.Env.Energy.Crypto += cfg.Crypto.EncryptEnergy
	encReady := at + cfg.Crypto.EncryptLatency
	t := feEnd

	candidate, found, t := s.lookupCandidate(d.Short, t, &bd)
	if found {
		equal, tv := s.verify(candidate, data, t, &bd)
		t = tv
		if equal {
			// F4: wasted speculative encryption.
			s.St.Mispredicts++
			s.St.WastedEncryptions++
			s.Alloc.Free(specPhys)
			mapLat := s.DedupHit(logical, candidate, t)
			bd.Metadata = mapLat
			s.train(logical, true)
			s.Env.Tel.OnWrite(s.Name(), telemetry.DecPredUniqueDup, logical, candidate, true, at, t+mapLat, &bd)
			return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: candidate}
		}
	}
	// T3: unique confirmed; the speculative ciphertext is committed. Only
	// the encryption tail not hidden under fingerprinting remains visible.
	s.train(logical, false)
	if encReady > t {
		bd.Encrypt = encReady - t
		t = encReady
	}
	wr, mapLat := s.StorePrepared(logical, specPhys, &s.ctBuf, specCounter, t)
	s.installFP(d.Short, specPhys, wr.AcceptedAt)
	bd.Queue += wr.Stall
	bd.Media = wr.ServiceLatency
	bd.Metadata = mapLat
	done := wr.AcceptedAt + wr.ServiceLatency
	s.Env.Tel.OnWrite(s.Name(), telemetry.DecPredUniqueUnique, logical, specPhys, false, at, done, &bd)
	return memctrl.WriteOutcome{Done: done, Breakdown: bd, PhysAddr: specPhys}
}

// installFP points the CRC bucket at phys and persists the entry off the
// critical path.
func (s *DeWrite) installFP(crc, phys uint64, at sim.Time) {
	if old, ok := s.fpIndex[crc]; ok {
		delete(s.physFP, old)
	}
	s.fpIndex[crc] = phys
	s.physFP[phys] = crc
	s.fpCache.Put(crc, phys)
	s.Env.Device.WriteMeta(s.Env.MetaLineFor(crc), at)
}

// Read implements memctrl.Scheme.
func (s *DeWrite) Read(logical uint64, at sim.Time) memctrl.ReadOutcome {
	out := s.ReadPath(logical, at)
	s.Env.Tel.OnRead(s.Name(), logical, out.Hit, at, out.Done)
	return out
}

// MetadataNVMM implements memctrl.Scheme.
func (s *DeWrite) MetadataNVMM() int64 {
	return int64(len(s.fpIndex))*int64(s.Env.Cfg.DeWrite.FPEntryBytes) + s.AMT.NVMMBytes()
}

// MetadataSRAM implements memctrl.Scheme.
func (s *DeWrite) MetadataSRAM() int64 {
	return int64(s.Env.Cfg.DeWrite.FPCacheBytes) + s.MetadataSRAMBase() +
		int64(len(s.predictor))/4 // 2-bit counters
}

// FPCacheStats exposes fingerprint-cache statistics for experiments.
func (s *DeWrite) FPCacheStats() cache.Stats { return s.fpCache.Stats }

// Crash implements memctrl.Crasher: the fingerprint cache and the
// duplication predictor are volatile and reset; the NVMM-resident index
// and AMT survive.
func (s *DeWrite) Crash(now sim.Time) {
	s.CrashBase(now)
	s.fpCache.Clear()
	for i := range s.predictor {
		s.predictor[i] = 1
	}
	s.global = 0
}
