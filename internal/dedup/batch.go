// Deferred-store machinery for batched write paths.
//
// The batch write path runs the same per-line decision sequence as the
// scalar path — in op order, with counters committed the moment a write is
// accepted — but defers the two costs worth amortizing: one-time-pad
// generation (batched through crypto.XorPadBatch) and the device write
// itself. Committing counters at decision time is what preserves the
// pad-uniqueness invariant: within one batch a physical line can be freed
// by a later op's remap and handed out again by the allocator, and a
// counter reserved lazily at flush time would be computed against the
// wrong map state. Everything the decision needs (allocation, AMT update,
// refcounts, integrity, statistics) happens eagerly; only the pad XOR and
// Device.Write wait for the flush.
package dedup

import (
	"github.com/esdsim/esd/internal/crypto"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/nvm"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/sparse"
)

// PendingStore is one deferred unique store: the counter is committed, the
// mapping installed, but the pad XOR and device write have not happened
// yet. Wr is filled by Deferred.Flush.
type PendingStore struct {
	// Logical is the logical address the store serves.
	Logical uint64
	// Phys is the physical line the ciphertext will land on.
	Phys uint64
	// Counter is the write counter committed at decision time.
	Counter uint64
	// At is the device-write issue time.
	At sim.Time
	// Slot is the caller's batch index, so outcomes can be finalized after
	// the flush.
	Slot int
	// Tag and Aux carry scheme-private finalization state (e.g. the
	// telemetry decision, or SHA1's fingerprint summary for the posted
	// metadata write).
	Tag uint8
	Aux uint64
	// Data holds the plaintext copy; Flush encrypts it in place.
	Data ecc.Line
	// Wr is the device write result, valid after Flush.
	Wr nvm.WriteResult
}

// Deferred accumulates pending unique stores for one batch. The scratch
// slices are reused across batches, so steady-state batch writes are
// allocation-free. inFlight mirrors the pending physical lines as a sparse
// membership set: Has is called once per EFIT-hit compare, and with batches
// of a few hundred ops a linear rescan per compare went quadratic.
type Deferred struct {
	pending  []PendingStore
	padOps   []crypto.BatchOp
	inFlight sparse.Map[bool]
}

// Defer queues a pending store. The plaintext is copied; the caller's line
// may be reused immediately.
func (d *Deferred) Defer(p PendingStore) {
	d.pending = append(d.pending, p)
	d.inFlight.Set(p.Phys, true)
}

// Has reports whether phys has a pending (unflushed) store.
func (d *Deferred) Has(phys uint64) bool {
	_, ok := d.inFlight.Get(phys)
	return ok
}

// Len reports the number of pending stores.
func (d *Deferred) Len() int { return len(d.pending) }

// Flush generates every pending pad through one batched AES pass and
// issues the device writes in original op order, filling each entry's Wr.
// The caller finalizes outcomes from Entries and then calls Reset.
func (d *Deferred) Flush(env *memctrl.Env) {
	if len(d.pending) == 0 {
		return
	}
	if cap(d.padOps) < len(d.pending) {
		d.padOps = make([]crypto.BatchOp, len(d.pending))
	}
	ops := d.padOps[:len(d.pending)]
	for i := range d.pending {
		p := &d.pending[i]
		ops[i] = crypto.BatchOp{Addr: p.Phys, Counter: p.Counter, Line: &p.Data}
	}
	env.Crypto.XorPadBatch(ops)
	for i := range d.pending {
		p := &d.pending[i]
		p.Wr = env.Device.Write(p.Phys, &p.Data, p.At)
	}
}

// Entries returns the flushed stores for outcome finalization.
func (d *Deferred) Entries() []PendingStore { return d.pending }

// Reset clears the batch, keeping the scratch capacity.
func (d *Deferred) Reset() {
	for i := range d.pending {
		d.inFlight.Delete(d.pending[i].Phys)
	}
	d.pending = d.pending[:0]
}

// StoreUniqueDeferred is StoreUnique with the pad generation and device
// write deferred into def: it allocates the physical line, commits the
// write counter, installs the mapping and charges the same energy and
// statistics at the same point of the op order, and queues the store. The
// returned mapLat is the visible metadata latency; the media-side outcome
// fields come from the flushed entry's Wr.
func (b *Base) StoreUniqueDeferred(def *Deferred, logical uint64, data *ecc.Line, at sim.Time, slot int, tag uint8, aux uint64) (phys uint64, mapLat sim.Time) {
	phys = b.Alloc.Alloc()
	counter := b.Env.Crypto.ReserveCounter(phys)
	b.Env.Energy.Crypto += b.Env.Cfg.Crypto.EncryptEnergy
	b.Env.Step(memctrl.StepCounterBumped)
	def.Defer(PendingStore{
		Logical: logical, Phys: phys, Counter: counter,
		At: at, Slot: slot, Tag: tag, Aux: aux, Data: *data,
	})
	mapLat = b.MapWrite(logical, phys, at)
	mapLat += b.Env.IntegrityUpdate(phys, counter, at)
	b.St.UniqueWrites++
	return phys, mapLat
}
