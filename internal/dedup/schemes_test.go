package dedup

import (
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
)

func testCfg() config.Config {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 28 // 256 MiB
	return cfg
}

func newEnv(t *testing.T) *memctrl.Env {
	t.Helper()
	cfg := testCfg()
	if msg := cfg.Validate(); msg != "" {
		t.Fatal(msg)
	}
	return memctrl.NewEnv(cfg)
}

func line(b byte) ecc.Line {
	var l ecc.Line
	for i := range l {
		l[i] = b
	}
	return l
}

// --- Baseline ---

func TestBaselineWriteReadRoundTrip(t *testing.T) {
	env := newEnv(t)
	s := NewBaseline(env)
	data := line(7)
	out := s.Write(42, &data, 0)
	if out.Deduplicated {
		t.Fatal("baseline deduplicated")
	}
	if out.Done < env.Cfg.Crypto.EncryptLatency+env.Cfg.PCM.WriteLatency {
		t.Fatalf("baseline write done at %v, too fast", out.Done)
	}
	r := s.Read(42, 10*sim.Microsecond)
	if !r.Hit || r.Data != data {
		t.Fatal("baseline read-back failed")
	}
	if st := s.Stats(); st.Writes != 1 || st.UniqueWrites != 1 || st.Reads != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBaselineNeverDedups(t *testing.T) {
	env := newEnv(t)
	s := NewBaseline(env)
	data := line(9)
	for i := uint64(0); i < 50; i++ {
		d := data
		if out := s.Write(i, &d, sim.Time(i)*sim.Microsecond); out.Deduplicated {
			t.Fatal("baseline deduplicated identical content")
		}
	}
	if s.Stats().UniqueWrites != 50 {
		t.Fatalf("unique writes = %d", s.Stats().UniqueWrites)
	}
	if s.MetadataNVMM() != 0 || s.MetadataSRAM() != 0 {
		t.Fatal("baseline reported metadata")
	}
}

func TestBaselineColdRead(t *testing.T) {
	env := newEnv(t)
	s := NewBaseline(env)
	r := s.Read(999, 0)
	if r.Hit {
		t.Fatal("cold read hit")
	}
}

// --- Dedup_SHA1 ---

func TestSHA1DeduplicatesIdenticalContent(t *testing.T) {
	env := newEnv(t)
	s := NewSHA1(env)
	data := line(3)
	d1 := data
	out1 := s.Write(1, &d1, 0)
	if out1.Deduplicated {
		t.Fatal("first write deduplicated")
	}
	d2 := data
	out2 := s.Write(2, &d2, 10*sim.Microsecond)
	if !out2.Deduplicated {
		t.Fatal("duplicate not detected")
	}
	if out2.PhysAddr != out1.PhysAddr {
		t.Fatal("duplicate mapped to different physical line")
	}
	// Both logical addresses read back the same content.
	for _, addr := range []uint64{1, 2} {
		r := s.Read(addr, 20*sim.Microsecond)
		if !r.Hit || r.Data != data {
			t.Fatalf("read-back of %d failed", addr)
		}
	}
	st := s.Stats()
	if st.UniqueWrites != 1 || st.DedupWrites != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSHA1WriteLatencyIncludesHash(t *testing.T) {
	env := newEnv(t)
	s := NewSHA1(env)
	data := line(5)
	out := s.Write(1, &data, 0)
	if out.Breakdown.FPCompute != env.Cfg.FP.SHA1Latency {
		t.Fatalf("FPCompute = %v, want SHA-1 latency", out.Breakdown.FPCompute)
	}
	if out.Done < env.Cfg.FP.SHA1Latency {
		t.Fatal("write completed before the hash could finish")
	}
}

func TestSHA1FullDedupUsesNVMMLookups(t *testing.T) {
	env := newEnv(t)
	s := NewSHA1(env)
	// Every first-seen content misses the FP cache and must fetch the
	// fingerprint bucket from NVMM (full deduplication).
	r := xrand.New(1)
	for i := 0; i < 20; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		s.Write(uint64(i), &d, sim.Time(i)*sim.Microsecond)
	}
	st := s.Stats()
	if st.FPNVMMLookups != 20 {
		t.Fatalf("NVMM lookups = %d, want 20", st.FPNVMMLookups)
	}
	if st.FPCacheMisses != 20 {
		t.Fatalf("cache misses = %d", st.FPCacheMisses)
	}
}

func TestSHA1CacheHitAvoidsNVMMLookup(t *testing.T) {
	env := newEnv(t)
	s := NewSHA1(env)
	data := line(8)
	d1 := data
	s.Write(1, &d1, 0)
	before := s.Stats().FPNVMMLookups
	d2 := data
	out := s.Write(2, &d2, 10*sim.Microsecond)
	if !out.Deduplicated {
		t.Fatal("dup missed")
	}
	if s.Stats().FPNVMMLookups != before {
		t.Fatal("cache-hit dup still looked up NVMM")
	}
	if s.Stats().DupByCache != 1 {
		t.Fatalf("DupByCache = %d", s.Stats().DupByCache)
	}
}

func TestSHA1OverwriteFreesAndPurges(t *testing.T) {
	env := newEnv(t)
	s := NewSHA1(env)
	a, b := line(1), line(2)
	d := a
	out1 := s.Write(1, &d, 0)
	d = b
	s.Write(1, &d, 10*sim.Microsecond) // overwrites; content A now unreferenced
	// Re-writing content A must NOT dedup onto the freed line.
	d = a
	out3 := s.Write(2, &d, 20*sim.Microsecond)
	if out3.Deduplicated && out3.PhysAddr == out1.PhysAddr {
		t.Fatal("deduplicated onto a freed physical line")
	}
	r := s.Read(1, 30*sim.Microsecond)
	if r.Data != b {
		t.Fatal("overwritten logical line lost its new content")
	}
	r = s.Read(2, 40*sim.Microsecond)
	if r.Data != a {
		t.Fatal("content A unreadable after free/rewrite")
	}
}

func TestSHA1MetadataFootprint(t *testing.T) {
	env := newEnv(t)
	s := NewSHA1(env)
	r := xrand.New(2)
	for i := 0; i < 10; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		s.Write(uint64(i), &d, sim.Time(i)*sim.Microsecond)
	}
	// 10 unique fingerprints at 26 B each plus 10 AMT entries at 10 B.
	want := int64(10*env.Cfg.SHA1.FPEntryBytes + 10*env.Cfg.Meta.AMTEntryBytes)
	if got := s.MetadataNVMM(); got != want {
		t.Fatalf("MetadataNVMM = %d, want %d", got, want)
	}
	if s.MetadataSRAM() <= 0 {
		t.Fatal("SRAM metadata not reported")
	}
}

// --- DeWrite ---

func TestDeWriteDeduplicatesWithVerification(t *testing.T) {
	env := newEnv(t)
	s := NewDeWrite(env)
	data := line(4)
	d1 := data
	s.Write(1, &d1, 0)
	d2 := data
	out := s.Write(2, &d2, 10*sim.Microsecond)
	if !out.Deduplicated {
		t.Fatal("duplicate missed")
	}
	if s.Stats().CompareReads == 0 {
		t.Fatal("DeWrite deduplicated without a verification read")
	}
	for _, addr := range []uint64{1, 2} {
		if r := s.Read(addr, 20*sim.Microsecond); r.Data != data {
			t.Fatalf("read-back of %d failed", addr)
		}
	}
}

func TestDeWritePredictorLearns(t *testing.T) {
	env := newEnv(t)
	s := NewDeWrite(env)
	data := line(6)
	// Repeated duplicate writes to the same logical address train the
	// predictor towards "duplicate".
	for i := 0; i < 10; i++ {
		d := data
		s.Write(7, &d, sim.Time(i+1)*10*sim.Microsecond)
	}
	st := s.Stats()
	if st.PredDup == 0 {
		t.Fatal("predictor never predicted duplicate despite a perfect dup stream")
	}
}

func TestDeWriteWastedEncryptionOnMisprediction(t *testing.T) {
	env := newEnv(t)
	s := NewDeWrite(env)
	// Fresh predictor predicts unique; writing duplicate content triggers
	// the F4 path: speculative encryption is wasted.
	data := line(11)
	d1 := data
	s.Write(1, &d1, 0)
	d2 := data
	out := s.Write(2, &d2, 10*sim.Microsecond) // different addr: predictor cold => predicted unique
	if !out.Deduplicated {
		t.Fatal("dup missed")
	}
	st := s.Stats()
	if st.WastedEncryptions == 0 || st.Mispredicts == 0 {
		t.Fatalf("F4 path not exercised: %+v", st)
	}
}

func TestDeWriteCRCEnergyChargedForAllWrites(t *testing.T) {
	env := newEnv(t)
	s := NewDeWrite(env)
	r := xrand.New(3)
	const n = 30
	for i := 0; i < n; i++ {
		var d ecc.Line
		d.SetWord(0, r.Uint64())
		s.Write(uint64(i), &d, sim.Time(i)*sim.Microsecond)
	}
	want := float64(n) * env.Cfg.FP.CRCEnergy
	if env.Energy.Fingerprint < want*0.999 || env.Energy.Fingerprint > want*1.001 {
		t.Fatalf("fingerprint energy = %v, want %v (CRC on every write)", env.Energy.Fingerprint, want)
	}
}

func TestDeWriteCollisionSafety(t *testing.T) {
	env := newEnv(t)
	s := NewDeWrite(env)
	// Construct two different lines with identical CRC32 by brute force
	// over a small population; with 16-bit truncation this is quick, but
	// CRC32 needs structured search — instead just verify that a cache-hit
	// candidate with different content is NOT deduplicated (simulate the
	// collision by forcing the index).
	a, b := line(1), line(2)
	d := a
	s.Write(1, &d, 0)
	// Force the CRC bucket of b's fingerprint at a's physical line.
	dB := s.fper.Fingerprint(&b)
	physA := uint64(0)
	if p, ok := s.fpIndex[s.fper.Fingerprint(&a).Short]; ok {
		physA = p
	}
	s.fpIndex[dB.Short] = physA
	s.fpCache.Put(dB.Short, physA)
	d = b
	out := s.Write(2, &d, 10*sim.Microsecond)
	if out.Deduplicated {
		t.Fatal("collision deduplicated different content")
	}
	if s.Stats().CompareMismatches == 0 {
		t.Fatal("collision not counted")
	}
	if r := s.Read(2, 20*sim.Microsecond); r.Data != b {
		t.Fatal("content corrupted by collision")
	}
}

// --- cross-scheme integration ---

func TestAllSchemesPreserveDataOnWorkloadTraces(t *testing.T) {
	profile, _ := workload.ByName("gcc")
	const n = 8000
	build := func(env *memctrl.Env, name string) memctrl.Scheme {
		switch name {
		case "baseline":
			return NewBaseline(env)
		case "sha1":
			return NewSHA1(env)
		default:
			return NewDeWrite(env)
		}
	}
	for _, name := range []string{"baseline", "sha1", "dewrite"} {
		env := newEnv(t)
		ctl := memctrl.NewController(env, build(env, name))
		ctl.VerifyReads = true
		if _, err := ctl.Run(workload.Stream(profile, 99, n)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDedupSchemesReduceDeviceWrites(t *testing.T) {
	profile, _ := workload.ByName("dedup") // 78% duplicate rate
	const n = 8000
	run := func(mk func(*memctrl.Env) memctrl.Scheme) *memctrl.RunResult {
		env := newEnv(t)
		ctl := memctrl.NewController(env, mk(env))
		res, err := ctl.Run(workload.Stream(profile, 5, n))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(func(e *memctrl.Env) memctrl.Scheme { return NewBaseline(e) })
	sha := run(func(e *memctrl.Env) memctrl.Scheme { return NewSHA1(e) })
	dw := run(func(e *memctrl.Env) memctrl.Scheme { return NewDeWrite(e) })
	if sha.DataWrites >= base.DataWrites || dw.DataWrites >= base.DataWrites {
		t.Fatalf("dedup did not reduce writes: base=%d sha=%d dw=%d",
			base.DataWrites, sha.DataWrites, dw.DataWrites)
	}
	// Full dedup on a 78%-dup workload should eliminate most writes.
	if red := sha.WriteReductionVs(base); red < 0.6 {
		t.Errorf("SHA1 write reduction = %.2f, want > 0.6", red)
	}
	if red := dw.WriteReductionVs(base); red < 0.6 {
		t.Errorf("DeWrite write reduction = %.2f, want > 0.6", red)
	}
}

func TestTraceReplayIsDeterministic(t *testing.T) {
	profile, _ := workload.ByName("leela")
	run := func() *memctrl.RunResult {
		env := newEnv(t)
		ctl := memctrl.NewController(env, NewSHA1(env))
		res, err := ctl.Run(workload.Stream(profile, 42, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.DataWrites != b.DataWrites || a.WriteHist.Mean() != b.WriteHist.Mean() ||
		a.Energy.Total() != b.Energy.Total() {
		t.Fatal("same-seed replays diverged")
	}
}

func TestSchemesHandleEmptyTrace(t *testing.T) {
	env := newEnv(t)
	ctl := memctrl.NewController(env, NewDeWrite(env))
	res, err := ctl.Run(trace.NewSliceStream(nil))
	if err != nil || res.Requests != 0 {
		t.Fatalf("empty trace: %+v, err=%v", res, err)
	}
}
