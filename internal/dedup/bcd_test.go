package dedup

import (
	"testing"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
)

// similarLine returns base with n words patched to new values.
func similarLine(base ecc.Line, n int, r *xrand.Rand) ecc.Line {
	out := base
	for i := 0; i < n; i++ {
		out.SetWord(7-i, r.Uint64())
	}
	return out
}

func TestBCDExactDedup(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	data := line(3)
	d1 := data
	out1 := s.Write(1, &d1, 0)
	d2 := data
	out2 := s.Write(2, &d2, 10*sim.Microsecond)
	if !out2.Deduplicated || out2.PhysAddr != out1.PhysAddr {
		t.Fatal("exact duplicate not eliminated")
	}
	if s.ExactDedups != 1 {
		t.Fatalf("ExactDedups = %d", s.ExactDedups)
	}
	for _, addr := range []uint64{1, 2} {
		if r := s.Read(addr, 20*sim.Microsecond); r.Data != data {
			t.Fatalf("read-back of %d failed", addr)
		}
	}
}

func TestBCDDeltaCompression(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	r := xrand.New(1)
	base := line(5)
	b := base
	s.Write(1, &b, 0)

	// A line differing in 2 of 8 words: stored as a delta against base.
	variant := similarLine(base, 2, r)
	v := variant
	out := s.Write(2, &v, 10*sim.Microsecond)
	if !out.Deduplicated {
		t.Fatal("similar line not compressed")
	}
	if s.DeltaWrites != 1 {
		t.Fatalf("DeltaWrites = %d", s.DeltaWrites)
	}
	// Read-back reconstructs the variant exactly.
	got := s.Read(2, 20*sim.Microsecond)
	if !got.Hit || got.Data != variant {
		t.Fatal("delta reconstruction failed")
	}
	if s.DeltaReads != 1 {
		t.Fatalf("DeltaReads = %d", s.DeltaReads)
	}
	// The base's own content is untouched.
	if r := s.Read(1, 30*sim.Microsecond); r.Data != base {
		t.Fatal("base corrupted by delta store")
	}
}

func TestBCDTooDifferentBecomesNewBase(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	r := xrand.New(2)
	base := line(7)
	b := base
	s.Write(1, &b, 0)
	// 5 differing words exceeds MaxDeltaWords.
	variant := similarLine(base, 5, r)
	v := variant
	out := s.Write(2, &v, 10*sim.Microsecond)
	if out.Deduplicated {
		t.Fatal("too-different line compressed")
	}
	if s.BaseWrites != 2 {
		t.Fatalf("BaseWrites = %d", s.BaseWrites)
	}
	if got := s.Read(2, 20*sim.Microsecond); got.Data != variant {
		t.Fatal("read-back failed")
	}
}

func TestBCDEffectiveCapacity(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	r := xrand.New(3)
	base := line(9)
	b := base
	s.Write(0, &b, 0)
	// 20 near-duplicates of the base, each differing in one word.
	now := sim.Time(0)
	for i := uint64(1); i <= 20; i++ {
		now += 10 * sim.Microsecond
		v := similarLine(base, 1, r)
		s.Write(i, &v, now)
	}
	cap := s.EffectiveCapacity()
	// 21 logical lines; ~1 base (64 B) + 20 deltas (10 B each) = 264 B,
	// i.e. roughly 5x effective capacity.
	if cap < 2 {
		t.Fatalf("effective capacity %.2f, want compression win", cap)
	}
	if s.LogicalBytes() != 21*64 {
		t.Fatalf("logical bytes %d", s.LogicalBytes())
	}
	if s.PhysicalBytes() >= s.LogicalBytes() {
		t.Fatal("no physical saving")
	}
}

func TestBCDOverwriteDeltaWithNewContent(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	r := xrand.New(4)
	base := line(11)
	b := base
	s.Write(1, &b, 0)
	v1 := similarLine(base, 1, r)
	d := v1
	s.Write(2, &d, 10*sim.Microsecond)
	before := s.PhysicalBytes()
	// Overwrite the delta line with unrelated content.
	other := line(200)
	d = other
	s.Write(2, &d, 20*sim.Microsecond)
	if got := s.Read(2, 30*sim.Microsecond); got.Data != other {
		t.Fatal("overwrite lost data")
	}
	if s.PhysicalBytes() <= before-10 {
		// The delta's bytes were released and a 64 B base added.
		t.Fatalf("capacity accounting off: %d -> %d", before, s.PhysicalBytes())
	}
	// Rewriting the base's logical with new content must not break the
	// other delta holders.
	v2 := similarLine(base, 1, r)
	d = v2
	s.Write(3, &d, 40*sim.Microsecond)
	d = line(111)
	s.Write(1, &d, 50*sim.Microsecond) // base's logical overwritten
	if got := s.Read(3, 60*sim.Microsecond); got.Data != v2 {
		t.Fatal("delta corrupted after its base's logical was overwritten")
	}
}

func TestBCDEndToEndWithOracle(t *testing.T) {
	profile, _ := workload.ByName("x264")
	env := newEnv(t)
	s := NewBCD(env)
	ctl := memctrl.NewController(env, s)
	ctl.VerifyReads = true
	res, err := ctl.Run(workload.Stream(profile, 21, 8000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme.DedupWrites == 0 {
		t.Fatal("BCD eliminated nothing")
	}
	if s.EffectiveCapacity() <= 1 {
		t.Fatalf("effective capacity %.2f <= 1", s.EffectiveCapacity())
	}
}

func TestBCDCrashKeepsData(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	r := xrand.New(5)
	base := line(13)
	b := base
	s.Write(1, &b, 0)
	v := similarLine(base, 2, r)
	d := v
	s.Write(2, &d, 10*sim.Microsecond)
	s.Crash(20 * sim.Microsecond)
	if got := s.Read(1, 30*sim.Microsecond); got.Data != base {
		t.Fatal("base lost in crash")
	}
	if got := s.Read(2, 40*sim.Microsecond); got.Data != v {
		t.Fatal("delta lost in crash")
	}
	// Dedup indexes are cold but rebuild.
	d2 := base
	if out := s.Write(3, &d2, 50*sim.Microsecond); out.Deduplicated {
		t.Fatal("index survived crash")
	}
	d2 = base
	s.Write(4, &d2, 60*sim.Microsecond)
}

func TestBCDMetadataAccounting(t *testing.T) {
	env := newEnv(t)
	s := NewBCD(env)
	d := line(1)
	s.Write(1, &d, 0)
	if s.MetadataNVMM() <= 0 || s.MetadataSRAM() <= 0 {
		t.Fatal("metadata accounting empty")
	}
}
