package dedup

import (
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
)

// fuzzConfig shrinks the device and metadata caches so a few hundred fuzz
// ops exercise eviction and refill paths.
func fuzzConfig() config.Config {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 22 // 64K lines
	cfg.Meta.AMTCacheBytes = 1 << 10
	cfg.SHA1.FPCacheBytes = 1 << 10
	cfg.DeWrite.FPCacheBytes = 1 << 10
	return cfg
}

// FuzzSchemeWrite drives one scheme with a fuzzer-chosen op stream against
// a map model: every read must return exactly the model's content, a crash
// must lose no data, and the white-box audits must stay clean throughout.
// The content alphabet is deliberately tiny (four pool lines plus
// fuzzer-perturbed variants) so duplicate hits, refcount churn and
// remapping dominate.
func FuzzSchemeWrite(f *testing.F) {
	f.Add(byte(0), []byte{0x01, 0x02, 0x41, 0x03, 0x81, 0x02, 0xC1, 0x05})
	f.Add(byte(1), []byte{0x00, 0x10, 0x00, 0x10, 0x20, 0x10, 0xFF, 0x10})
	f.Add(byte(2), []byte{0x07, 0x00, 0x17, 0x01, 0x27, 0x02, 0x37, 0x03})
	f.Add(byte(3), []byte{0xA0, 0x55, 0xB1, 0x55, 0xC2, 0x55, 0xD3, 0x55})
	f.Fuzz(func(t *testing.T, which byte, data []byte) {
		env := memctrl.NewEnv(fuzzConfig())
		var sch memctrl.Scheme
		switch which % 4 {
		case 0:
			sch = NewBaseline(env)
		case 1:
			sch = NewSHA1(env)
		case 2:
			sch = NewDeWrite(env)
		case 3:
			sch = NewBCD(env)
		}

		var pool [4]ecc.Line
		for i := range pool {
			for w := 0; w < ecc.WordsPerLine; w++ {
				pool[i].SetWord(w, uint64(i+1)*0x9E3779B97F4A7C15+uint64(w))
			}
		}

		model := make(map[uint64]ecc.Line)
		now := sim.Time(0)
		var buf ecc.Line
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			addr := uint64(arg) & 0x7F
			now += 10 * sim.Nanosecond
			switch op % 8 {
			case 0, 1, 2, 3: // write, content from the pool
				buf = pool[op%4]
				if op&0x40 != 0 {
					// Perturb one word so uniques, partial duplicates and
					// (for BCD) similar-but-not-identical lines all occur.
					buf.SetWord(int(op>>4)&7, uint64(arg)<<32|uint64(op))
				}
				out := sch.Write(addr, &buf, now)
				if out.Done > now {
					now = out.Done
				}
				model[addr] = buf
			case 4, 5: // read
				out := sch.Read(addr, now)
				if out.Done > now {
					now = out.Done
				}
				want, wantHit := model[addr]
				if out.Hit != wantHit {
					t.Fatalf("op %d: read addr=%d hit=%v, model says %v", i, addr, out.Hit, wantHit)
				}
				if out.Hit && out.Data != want {
					t.Fatalf("op %d: read addr=%d returned wrong data", i, addr)
				}
			case 6: // crash: volatile dedup state lost, data survives
				if c, ok := sch.(memctrl.Crasher); ok {
					c.Crash(now)
				}
			case 7: // mid-stream audit
				if a, ok := sch.(interface{ AuditBase() []string }); ok {
					if bad := a.AuditBase(); len(bad) != 0 {
						t.Fatalf("op %d: audit: %v", i, bad)
					}
				}
			}
		}

		// Read-back sweep plus final audits.
		for addr, want := range model {
			now += 10 * sim.Nanosecond
			out := sch.Read(addr, now)
			if !out.Hit {
				t.Fatalf("sweep: addr %d lost", addr)
			}
			if out.Data != want {
				t.Fatalf("sweep: addr %d returned wrong data", addr)
			}
		}
		if a, ok := sch.(interface{ AuditBase() []string }); ok {
			if bad := a.AuditBase(); len(bad) != 0 {
				t.Fatalf("final audit: %v", bad)
			}
		}
		if a, ok := sch.(interface{ AuditIndex() []string }); ok {
			if bad := a.AuditIndex(); len(bad) != 0 {
				t.Fatalf("final index audit: %v", bad)
			}
		}
	})
}
