package dedup

import (
	"encoding/binary"

	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// BCD implements a simplified Base-and-Compressed-Difference scheme in the
// spirit of Park et al. (ASPLOS'21), which the ESD paper discusses as
// related work (§V): beyond exact duplicates, lines that *partially* match
// an existing base line are stored as compressed word-level deltas,
// trading extra read work for effective capacity.
//
// This reproduction keeps the structure at the granularity the rest of
// the simulator models:
//
//   - exact duplicates are found by the full ECC fingerprint plus a byte
//     comparison (so no false dedup), with the index on-chip;
//   - similarity uses two half-line sub-fingerprints (the ECC bytes of
//     words 0-3 and of words 4-7): a line whose differences from a base
//     avoid one half matches that half's key;
//   - if at most MaxDeltaWords words differ, the line is stored as a
//     delta — an (index, word) list packed byte-contiguously into a delta
//     region — otherwise it becomes a new base;
//   - reads of delta lines fetch the base line and the delta line
//     (two media reads) and reconstruct.
//
// Effective capacity — BCD's headline metric — is tracked byte-exactly:
// PhysicalBytes counts base lines at 64 B plus packed delta bytes, while
// LogicalBytes counts every mapped logical line at 64 B.
type BCD struct {
	Base
	// exact dedup index: full ECC fingerprint -> base phys.
	fpIndex map[uint64]uint64
	physFP  map[uint64]uint64
	// similarity indexes: half-line sub-fingerprints (ECC bytes of words
	// 0-3 and of words 4-7) -> candidate base phys. A line differing from
	// a base in a few words matches whenever its diffs avoid one half —
	// best-effort similarity detection, like BCD's sampled base matching.
	simLo   map[uint32]uint64
	simHi   map[uint32]uint64
	physSim map[uint64][2]uint32

	// deltas maps a logical address to its delta representation. Logical
	// addresses NOT in this map resolve through the AMT as full lines.
	deltas map[uint64]*deltaEntry

	// Delta region: an append-only byte allocator in the metadata region;
	// deltaBytes counts live payload for capacity accounting.
	deltaCursor uint64
	deltaBytes  int64

	// Stats.
	DeltaWrites  uint64 // lines stored as compressed deltas
	DeltaReads   uint64 // reads served by base+delta reconstruction
	BaseWrites   uint64 // lines stored as new bases
	ExactDedups  uint64
	DeltaBytesWr int64 // total compressed payload written
}

// deltaEntry is a compressed line: the base it patches plus the differing
// words.
type deltaEntry struct {
	basePhys  uint64
	deltaLine uint64 // line in the delta region holding the payload
	mask      uint8  // which words differ
	words     [8]uint64
	size      int // packed bytes: 2-byte header + 8 per differing word
}

// MaxDeltaWords is the compression threshold: lines differing from their
// base in more than this many 8-byte words become new bases.
const MaxDeltaWords = 3

// NewBCD constructs the BCD scheme on env.
func NewBCD(env *memctrl.Env) *BCD {
	s := &BCD{
		Base:    NewBase(env),
		fpIndex: make(map[uint64]uint64),
		physFP:  make(map[uint64]uint64),
		simLo:   make(map[uint32]uint64),
		simHi:   make(map[uint32]uint64),
		physSim: make(map[uint64][2]uint32),
		deltas:  make(map[uint64]*deltaEntry),
	}
	s.OnFree = s.purge
	return s
}

func (s *BCD) purge(phys uint64) {
	if fp, ok := s.physFP[phys]; ok {
		delete(s.physFP, phys)
		if cur, ok := s.fpIndex[fp]; ok && cur == phys {
			delete(s.fpIndex, fp)
		}
	}
	if sk, ok := s.physSim[phys]; ok {
		delete(s.physSim, phys)
		if cur, ok := s.simLo[sk[0]]; ok && cur == phys {
			delete(s.simLo, sk[0])
		}
		if cur, ok := s.simHi[sk[1]]; ok && cur == phys {
			delete(s.simHi, sk[1])
		}
	}
}

// Name implements memctrl.Scheme.
func (s *BCD) Name() string { return "bcd" }

// simKeys returns the two half-line sub-fingerprints: the ECC bytes of
// words 0-3 and of words 4-7.
func simKeys(fp uint64) (lo, hi uint32) {
	return uint32(fp), uint32(fp >> 32)
}

// lookupSimilar finds a candidate base sharing either half-fingerprint.
func (s *BCD) lookupSimilar(fp uint64) (uint64, bool) {
	lo, hi := simKeys(fp)
	if phys, ok := s.simLo[lo]; ok {
		return phys, true
	}
	if phys, ok := s.simHi[hi]; ok {
		return phys, true
	}
	return 0, false
}

// diff returns the mask and words of data that differ from base.
func diff(base, data *ecc.Line) (mask uint8, words [8]uint64, n int) {
	for w := 0; w < 8; w++ {
		dw := data.Word(w)
		if base.Word(w) != dw {
			mask |= 1 << uint(w)
			words[w] = dw
			n++
		}
	}
	return mask, words, n
}

// dropDelta removes a logical address's delta descriptor and releases its
// packed capacity. The base-line reference is held by the AMT mapping, so
// reference counting is handled by whatever remaps the logical address.
func (s *BCD) dropDelta(logical uint64) {
	de, ok := s.deltas[logical]
	if !ok {
		return
	}
	delete(s.deltas, logical)
	s.deltaBytes -= int64(de.size)
}

// Write implements memctrl.Scheme.
func (s *BCD) Write(logical uint64, data *ecc.Line, at sim.Time) memctrl.WriteOutcome {
	s.St.Writes++
	cfg := s.Env.Cfg
	fp := uint64(ecc.EncodeLine(data))

	s.Env.ChargeSRAM()
	feStart, feEnd := s.Env.Frontend.Reserve(at, cfg.Meta.SRAMLatency)
	bd := stats.Breakdown{Queue: feStart - at, FPLookupSRAM: cfg.Meta.SRAMLatency}
	t := feEnd

	// Exact-duplicate attempt.
	if candidate, ok := s.fpIndex[fp]; ok {
		ct, found, rr := s.Env.Device.Read(candidate, t)
		s.St.CompareReads++
		s.Env.ChargeCompare()
		t = rr.Done + cfg.FP.CompareTime
		bd.ReadCompare = t - feEnd
		if found {
			pt := s.Env.Crypto.Decrypt(candidate, &ct)
			if pt == *data {
				s.ExactDedups++
				s.St.DupByCache++
				s.St.FPCacheHits++
				s.dropDelta(logical)
				mapLat := s.DedupHit(logical, candidate, t)
				bd.Metadata = mapLat
				s.Env.Tel.OnCompare(false)
				s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPCache, logical, candidate, true, at, t+mapLat, &bd)
				return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: candidate}
			}
			s.St.CompareMismatches++
			s.Env.Tel.OnCompare(true)
		} else {
			s.Env.Tel.OnCompare(false)
		}
	}
	s.St.FPCacheMisses++

	// Similarity attempt: a base sharing a half-line sub-fingerprint.
	if base, ok := s.lookupSimilar(fp); ok {
		ct, found, rr := s.Env.Device.Read(base, t)
		s.St.CompareReads++
		s.Env.ChargeCompare()
		s.Env.Tel.OnCompare(false) // similarity probe, not a collision check
		t = rr.Done + cfg.FP.CompareTime
		bd.ReadCompare = t - feEnd
		if found {
			basePT := s.Env.Crypto.Decrypt(base, &ct)
			if mask, words, n := diff(&basePT, data); n > 0 && n <= MaxDeltaWords {
				return s.storeDelta(logical, base, mask, words, n, at, t, bd)
			}
		}
	}

	// New base line.
	s.BaseWrites++
	bd.Encrypt = cfg.Crypto.EncryptLatency
	phys, wr, mapLat := s.StoreUnique(logical, data, t+cfg.Crypto.EncryptLatency)
	s.dropDelta(logical)
	s.installIndexes(fp, phys)
	bd.Queue += wr.Stall
	bd.Media = wr.ServiceLatency
	bd.Metadata = mapLat
	done := wr.AcceptedAt + wr.ServiceLatency
	s.Env.Tel.OnWrite(s.Name(), telemetry.DecBaseWrite, logical, phys, false, at, done, &bd)
	return memctrl.WriteOutcome{Done: done, Breakdown: bd, PhysAddr: phys}
}

func (s *BCD) installIndexes(fp, phys uint64) {
	if old, ok := s.fpIndex[fp]; ok {
		delete(s.physFP, old)
	}
	s.fpIndex[fp] = phys
	s.physFP[phys] = fp
	lo, hi := simKeys(fp)
	if old, ok := s.simLo[lo]; ok {
		delete(s.physSim, old)
	}
	if old, ok := s.simHi[hi]; ok {
		delete(s.physSim, old)
	}
	s.simLo[lo] = phys
	s.simHi[hi] = phys
	s.physSim[phys] = [2]uint32{lo, hi}
}

// storeDelta records logical as a compressed patch against base; at is the
// write's arrival time, t the current pipeline time.
func (s *BCD) storeDelta(logical, base uint64, mask uint8, words [8]uint64, n int, at, t sim.Time, bd stats.Breakdown) memctrl.WriteOutcome {
	cfg := s.Env.Cfg
	s.DeltaWrites++

	size := 2 + 8*n
	// Pack into the delta region: deltas share lines; the packed line is
	// written once per delta append (read-modify-write absorbed by the
	// controller's write buffer).
	lineIdx := s.deltaCursor / 64
	if (s.deltaCursor%64)+uint64(size) > 64 {
		// Does not fit in the open line: start a new one.
		s.deltaCursor = (lineIdx + 1) * 64
		lineIdx++
	}
	deltaLine := s.Env.MetaLineFor(0xD347A_0000 + lineIdx)
	s.deltaCursor += uint64(size)

	// Replace any previous representation of this logical line; the AMT
	// remap (shared MapWrite) maintains the base's reference count.
	s.dropDelta(logical)
	mapLat := s.MapWrite(logical, base, t)

	de := &deltaEntry{basePhys: base, deltaLine: deltaLine, mask: mask, words: words, size: size}
	s.deltas[logical] = de
	s.deltaBytes += int64(size)
	s.DeltaBytesWr += int64(size)

	// One media write for the (packed) delta line; encrypted like any
	// other line leaving the chip.
	var payload ecc.Line
	payload.SetWord(0, uint64(mask))
	slot := 1
	for w := 0; w < 8 && slot < 8; w++ {
		if mask&(1<<uint(w)) != 0 {
			binary.LittleEndian.PutUint64(payload[slot*8:], words[w])
			slot++
		}
	}
	ct, _ := s.Env.Crypto.Encrypt(deltaLine, &payload)
	s.Env.Energy.Crypto += cfg.Crypto.EncryptEnergy
	wr := s.Env.Device.Write(deltaLine, &ct, t+cfg.Crypto.EncryptLatency)

	s.St.DedupWrites++ // a full line write was avoided
	bd.Encrypt = cfg.Crypto.EncryptLatency
	bd.Queue += wr.Stall
	bd.Media = wr.ServiceLatency
	bd.Metadata = mapLat
	done := wr.AcceptedAt + wr.ServiceLatency
	s.Env.Tel.OnWrite(s.Name(), telemetry.DecDeltaWrite, logical, base, true, at, done, &bd)
	return memctrl.WriteOutcome{
		Done:         done,
		Breakdown:    bd,
		Deduplicated: true,
		PhysAddr:     base,
	}
}

// Read implements memctrl.Scheme: delta lines reconstruct from base +
// delta; full lines use the shared read path.
func (s *BCD) Read(logical uint64, at sim.Time) memctrl.ReadOutcome {
	de, ok := s.deltas[logical]
	if !ok {
		out := s.ReadPath(logical, at)
		s.Env.Tel.OnRead(s.Name(), logical, out.Hit, at, out.Done)
		return out
	}
	s.St.Reads++
	s.DeltaReads++
	_, feEnd := s.Env.Frontend.Reserve(at, s.Env.Cfg.Meta.SRAMLatency)
	// Base line read.
	ct, found, rr := s.Env.Device.Read(de.basePhys, feEnd)
	if !found {
		s.Env.Tel.OnRead(s.Name(), logical, false, at, rr.Done)
		return memctrl.ReadOutcome{Done: rr.Done, Hit: false}
	}
	base := s.Env.Crypto.Decrypt(de.basePhys, &ct)
	// Delta line read (sequential: the mask tells which words to patch).
	_, _, rr2 := s.Env.Device.Read(de.deltaLine, rr.Done)
	out := base
	for w := 0; w < 8; w++ {
		if de.mask&(1<<uint(w)) != 0 {
			out.SetWord(w, de.words[w])
		}
	}
	s.Env.Tel.OnRead(s.Name(), logical, true, at, rr2.Done)
	return memctrl.ReadOutcome{Done: rr2.Done, Data: out, Hit: true}
}

// LogicalBytes returns the bytes of logical data currently mapped.
func (s *BCD) LogicalBytes() int64 {
	return int64(s.AMT.Entries()) * 64
}

// PhysicalBytes returns the physical bytes consumed: full base lines plus
// packed delta payloads.
func (s *BCD) PhysicalBytes() int64 {
	return int64(s.Alloc.Live())*64 + s.deltaBytes
}

// EffectiveCapacity returns logical/physical bytes — BCD's headline metric
// (>1 means the device stores more than its raw capacity).
func (s *BCD) EffectiveCapacity() float64 {
	p := s.PhysicalBytes()
	if p == 0 {
		return 0
	}
	return float64(s.LogicalBytes()) / float64(p)
}

// MetadataNVMM implements memctrl.Scheme.
func (s *BCD) MetadataNVMM() int64 {
	// Delta payloads are data, not metadata; the AMT plus per-base index
	// entries (16 B each, matching BCD's table entries) count here.
	return s.AMT.NVMMBytes() + int64(len(s.fpIndex))*16
}

// MetadataSRAM implements memctrl.Scheme.
func (s *BCD) MetadataSRAM() int64 {
	return s.MetadataSRAMBase() + int64(len(s.simLo)+len(s.simHi))*8
}

// Crash implements memctrl.Crasher: indexes are volatile; deltas and the
// AMT persist (delta descriptors live with the AMT in this model).
func (s *BCD) Crash(now sim.Time) {
	s.CrashBase(now)
	// fp/sim indexes are rebuilt lazily; dropping them only costs future
	// dedup opportunities, never data.
	s.fpIndex = make(map[uint64]uint64)
	s.physFP = make(map[uint64]uint64)
	s.simLo = make(map[uint32]uint64)
	s.simHi = make(map[uint32]uint64)
	s.physSim = make(map[uint64][2]uint32)
}
