package dedup

import (
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// Baseline is the paper's comparison point without deduplication: every
// dirty eviction is counter-mode encrypted and written in place (logical
// address == physical address), every read is a direct media read.
type Baseline struct {
	env *memctrl.Env
	st  memctrl.SchemeStats

	// ctBuf is the scratch line Write encrypts into, keeping the steady
	// state free of per-call heap copies (schemes are single-threaded).
	ctBuf ecc.Line

	// def holds the deferred stores of one WriteBatch call.
	def Deferred
}

// NewBaseline constructs the baseline scheme on env.
func NewBaseline(env *memctrl.Env) *Baseline {
	return &Baseline{env: env}
}

// Name implements memctrl.Scheme.
func (s *Baseline) Name() string { return "baseline" }

// Write encrypts and writes the line in place.
func (s *Baseline) Write(logical uint64, data *ecc.Line, at sim.Time) memctrl.WriteOutcome {
	s.st.Writes++
	s.st.UniqueWrites++
	// The AES engine is dedicated and pipelined: encryption adds latency
	// to this write but does not occupy the controller pipeline.
	s.ctBuf = *data
	counter := s.env.Crypto.EncryptInPlace(logical, &s.ctBuf)
	s.env.Energy.Crypto += s.env.Cfg.Crypto.EncryptEnergy
	s.env.Step(memctrl.StepCounterBumped)
	wr := s.env.Device.Write(logical, &s.ctBuf, at+s.env.Cfg.Crypto.EncryptLatency)
	metaLat := s.env.IntegrityUpdate(logical, counter, at)
	done := wr.AcceptedAt + wr.ServiceLatency
	bd := stats.Breakdown{
		Queue:    wr.Stall,
		Encrypt:  s.env.Cfg.Crypto.EncryptLatency,
		Media:    wr.ServiceLatency,
		Metadata: metaLat,
	}
	s.env.Tel.OnWrite(s.Name(), telemetry.DecBaseline, logical, logical, false, at, done, &bd)
	return memctrl.WriteOutcome{Done: done, PhysAddr: logical, Breakdown: bd}
}

// WriteBatch implements memctrl.BatchWriter. The baseline has no dedup
// decision and never reads during a write, so the whole batch defers
// cleanly: counters are committed per op in order, then every pad comes
// from one batched AES pass and the device writes issue in op order.
func (s *Baseline) WriteBatch(ops []memctrl.BatchWrite) {
	cfg := s.env.Cfg
	for i := range ops {
		op := &ops[i]
		s.st.Writes++
		s.st.UniqueWrites++
		counter := s.env.Crypto.ReserveCounter(op.Logical)
		s.env.Energy.Crypto += cfg.Crypto.EncryptEnergy
		s.env.Step(memctrl.StepCounterBumped)
		s.def.Defer(PendingStore{
			Logical: op.Logical, Phys: op.Logical, Counter: counter,
			At: op.At + cfg.Crypto.EncryptLatency, Slot: i, Data: *op.Data,
		})
		metaLat := s.env.IntegrityUpdate(op.Logical, counter, op.At)
		op.Out = memctrl.WriteOutcome{
			PhysAddr: op.Logical,
			Breakdown: stats.Breakdown{
				Encrypt:  cfg.Crypto.EncryptLatency,
				Metadata: metaLat,
			},
		}
	}
	s.def.Flush(s.env)
	entries := s.def.Entries()
	for i := range entries {
		p := &entries[i]
		op := &ops[p.Slot]
		op.Out.Breakdown.Queue = p.Wr.Stall
		op.Out.Breakdown.Media = p.Wr.ServiceLatency
		op.Out.Done = p.Wr.AcceptedAt + p.Wr.ServiceLatency
		s.env.Tel.OnWrite(s.Name(), telemetry.DecBaseline, p.Logical, p.Logical, false, op.At, op.Out.Done, &op.Out.Breakdown)
	}
	s.def.Reset()
}

// Read fetches and decrypts the line. Like every scheme, the read passes
// the controller front end (request decode plus the encryption-counter
// probe that counter-mode decryption needs).
func (s *Baseline) Read(logical uint64, at sim.Time) memctrl.ReadOutcome {
	s.st.Reads++
	_, feEnd := s.env.Frontend.Reserve(at, s.env.Cfg.Meta.SRAMLatency)
	s.env.ChargeSRAM()
	ct, ok, rr := s.env.Device.Read(logical, feEnd)
	out := memctrl.ReadOutcome{Done: rr.Done, Hit: ok}
	if ok {
		if vlat := s.env.IntegrityVerify(logical, feEnd); feEnd+vlat > out.Done {
			out.Done = feEnd + vlat
		}
		s.env.Crypto.DecryptInPlace(logical, &ct)
		out.Data = ct
	}
	s.env.Tel.OnRead(s.Name(), logical, ok, at, out.Done)
	return out
}

// Tick implements memctrl.Scheme (no maintenance).
func (s *Baseline) Tick(sim.Time) {}

// TickInterval implements memctrl.Scheme.
func (s *Baseline) TickInterval() sim.Time { return 0 }

// MetadataNVMM implements memctrl.Scheme: the baseline keeps no
// deduplication metadata.
func (s *Baseline) MetadataNVMM() int64 { return 0 }

// MetadataSRAM implements memctrl.Scheme.
func (s *Baseline) MetadataSRAM() int64 { return 0 }

// Stats implements memctrl.Scheme.
func (s *Baseline) Stats() memctrl.SchemeStats { return s.st }

// Crash implements memctrl.Crasher: the baseline keeps no volatile
// deduplication state, so a power failure costs nothing.
func (s *Baseline) Crash(sim.Time) {}
