package dedup

import (
	"encoding/binary"
	"fmt"
)

// This file implements the white-box invariant audits behind
// internal/check: each scheme exposes an Audit-style method returning a
// list of human-readable violations (empty = consistent). Audits are pure
// observers — they walk the authoritative maps directly and never touch
// the timed device or cache paths, so running one between operations
// perturbs neither latency accounting nor cache recency.

// AuditBase checks the mapping/refcount machinery every deduplicating
// scheme shares:
//
//   - refcount conservation: for every physical line, the stored reference
//     count equals the number of AMT entries mapping to it (in both
//     directions — no overcounts, no orphaned refcount entries);
//   - the AMT is a function into the data region: every mapped physical
//     line lies below DataLines;
//   - no dangling lines: the allocator's live count equals the number of
//     referenced physical lines (every allocation is reachable and every
//     reachable line is allocated).
func (b *Base) AuditBase() []string {
	var bad []string
	counts := make(map[uint64]uint32)
	b.AMT.Range(func(logical, phys uint64) bool {
		counts[phys]++
		if phys >= b.Env.DataLines {
			bad = append(bad, fmt.Sprintf("amt: logical %d maps to phys %d outside the data region (%d lines)", logical, phys, b.Env.DataLines))
		}
		return true
	})
	for phys, want := range counts {
		if got := b.Refs.Count(phys); got != want {
			bad = append(bad, fmt.Sprintf("refcount: phys %d holds %d refs but %d AMT entries point at it", phys, got, want))
		}
	}
	b.Refs.Range(func(phys uint64, c uint32) bool {
		if counts[phys] == 0 {
			bad = append(bad, fmt.Sprintf("refcount: phys %d holds %d refs but no AMT entry points at it", phys, c))
		}
		return true
	})
	if live, refd := b.Alloc.Live(), uint64(b.Refs.Lines()); live != refd {
		bad = append(bad, fmt.Sprintf("alloc: %d live lines but %d referenced lines (dangling or leaked)", live, refd))
	}
	return bad
}

// AuditIndex checks SHA1's fingerprint structures: the NVMM index and the
// reverse map must be a bijection over live (referenced) physical lines,
// and every cached fingerprint summary must agree with the index.
func (s *SHA1) AuditIndex() []string {
	var bad []string
	for key, phys := range s.fpIndex {
		if rev, ok := s.physFP[phys]; !ok || rev != key {
			bad = append(bad, fmt.Sprintf("sha1: fpIndex entry for phys %d has no matching reverse map", phys))
		}
		if s.Refs.Count(phys) == 0 {
			bad = append(bad, fmt.Sprintf("sha1: fpIndex points at unreferenced phys %d (stale entry could dedup onto freed storage)", phys))
		}
	}
	for phys, key := range s.physFP {
		if cur, ok := s.fpIndex[key]; !ok || cur != phys {
			bad = append(bad, fmt.Sprintf("sha1: reverse map entry for phys %d not in fpIndex", phys))
		}
	}
	s.fpCache.Range(func(short uint64, phys uint64, _ int) bool {
		key, ok := s.physFP[phys]
		if !ok || binary.LittleEndian.Uint64(key[:8]) != short {
			bad = append(bad, fmt.Sprintf("sha1: fp cache entry %#x -> phys %d disagrees with the NVMM index", short, phys))
		}
		return true
	})
	return bad
}

// AuditIndex checks DeWrite's fingerprint structures: installFP keeps
// fpIndex and the reverse map a bijection (re-pointing a CRC bucket drops
// the old reverse entry), purge removes both sides when a line is freed,
// and the on-chip cache mirrors the index exactly.
func (s *DeWrite) AuditIndex() []string {
	var bad []string
	for crc, phys := range s.fpIndex {
		if rev, ok := s.physFP[phys]; !ok || rev != crc {
			bad = append(bad, fmt.Sprintf("dewrite: fpIndex %#x -> phys %d has no matching reverse map", crc, phys))
		}
		if s.Refs.Count(phys) == 0 {
			bad = append(bad, fmt.Sprintf("dewrite: fpIndex %#x points at unreferenced phys %d", crc, phys))
		}
	}
	for phys, crc := range s.physFP {
		if cur, ok := s.fpIndex[crc]; !ok || cur != phys {
			bad = append(bad, fmt.Sprintf("dewrite: reverse map phys %d -> %#x not in fpIndex", phys, crc))
		}
	}
	s.fpCache.Range(func(crc uint64, phys uint64, _ int) bool {
		if cur, ok := s.fpIndex[crc]; !ok || cur != phys {
			bad = append(bad, fmt.Sprintf("dewrite: fp cache entry %#x -> phys %d disagrees with the NVMM index", crc, phys))
		}
		return true
	})
	return bad
}
