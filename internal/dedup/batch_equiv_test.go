package dedup_test

import (
	"fmt"
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/experiments"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/xrand"
)

// The batch write path must be observably identical to the scalar path:
// same dedup decisions, same physical placements, same counters and
// statistics, same data on every read-back. This drives one op stream
// through a scalar engine and a batch engine (same seed, same config) and
// compares everything except latencies, which legitimately differ because
// deferred device writes see different bank-queue states.
func testScheme(t *testing.T, name string, batchSize int) {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 24
	cfg.Meta.EFITCacheBytes = 16 << 10
	cfg.Meta.AMTCacheBytes = 16 << 10
	cfg.SHA1.FPCacheBytes = 16 << 10
	if msg := cfg.Validate(); msg != "" {
		t.Fatal(msg)
	}
	envS, envB := memctrl.NewEnv(cfg), memctrl.NewEnv(cfg)
	scalar, err := experiments.NewScheme(envS, name)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := experiments.NewScheme(envB, name)
	if err != nil {
		t.Fatal(err)
	}

	const ops = 4000
	const addrSpace = 512
	rng := xrand.New(42)
	at := sim.Time(0)
	batchOps := make([]memctrl.BatchWrite, 0, batchSize)
	lines := make([]ecc.Line, batchSize)
	scalarOuts := make([]memctrl.WriteOutcome, 0, batchSize)
	addrs := make(map[uint64]bool)

	flush := func() {
		t.Helper()
		memctrl.WriteBatch(batch, batchOps)
		for i := range batchOps {
			so, bo := scalarOuts[i], batchOps[i].Out
			if so.Deduplicated != bo.Deduplicated || so.PhysAddr != bo.PhysAddr {
				t.Fatalf("%s: op at logical %d diverged: scalar (dedup=%v phys=%d) batch (dedup=%v phys=%d)",
					name, batchOps[i].Logical, so.Deduplicated, so.PhysAddr, bo.Deduplicated, bo.PhysAddr)
			}
		}
		batchOps = batchOps[:0]
		scalarOuts = scalarOuts[:0]
	}

	for i := 0; i < ops; i++ {
		logical := rng.Uint64n(addrSpace)
		addrs[logical] = true
		var l ecc.Line
		if rng.Bool(0.5) {
			// Dup-heavy pool: forces EFIT hits, compare reads, and — with
			// a pool this small — intra-batch duplicates of lines whose
			// stores are still pending (the mid-batch flush path).
			l.SetWord(0, rng.Uint64n(8))
		} else {
			l.SetWord(0, rng.Uint64())
			l.SetWord(1, rng.Uint64())
		}
		at += 10 * sim.Nanosecond

		k := len(batchOps)
		lines[k] = l
		scalarOuts = append(scalarOuts, scalar.Write(logical, &l, at))
		batchOps = append(batchOps, memctrl.BatchWrite{Logical: logical, Data: &lines[k], At: at})
		if len(batchOps) == batchSize {
			flush()
		}
	}
	flush()

	if s, b := scalar.Stats(), batch.Stats(); s != b {
		t.Fatalf("%s: stats diverged:\nscalar %+v\nbatch  %+v", name, s, b)
	}
	if s, b := envS.Crypto.Encryptions, envB.Crypto.Encryptions; s != b {
		t.Fatalf("%s: encryptions diverged: %d vs %d", name, s, b)
	}
	match := true
	envS.Crypto.RangeCounters(func(addr, c uint64) bool {
		if envB.Crypto.Counter(addr) != c {
			match = false
		}
		return match
	})
	if !match || envS.Crypto.CounterEntries() != envB.Crypto.CounterEntries() {
		t.Fatalf("%s: counter state diverged", name)
	}
	late := at + sim.Millisecond
	for logical := range addrs {
		rs, rb := scalar.Read(logical, late), batch.Read(logical, late)
		if rs.Hit != rb.Hit || rs.Data != rb.Data {
			t.Fatalf("%s: read-back of %d diverged (hit %v/%v)", name, logical, rs.Hit, rb.Hit)
		}
	}
}

func TestWriteBatchMatchesScalar(t *testing.T) {
	for _, name := range []string{
		experiments.SchemeESD,
		experiments.SchemeBaseline,
		experiments.SchemeSHA1,
		// DeWrite and BCD exercise the scalar fallback in memctrl.WriteBatch.
		experiments.SchemeDeWrite,
		experiments.SchemeBCD,
	} {
		for _, size := range []int{1, 5, 8, 32} {
			t.Run(fmt.Sprintf("%s/batch=%d", name, size), func(t *testing.T) {
				testScheme(t, name, size)
			})
		}
	}
}
