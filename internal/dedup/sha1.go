package dedup

import (
	"encoding/binary"

	"github.com/esdsim/esd/internal/cache"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/fingerprint"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/telemetry"
)

// SHA1 is the traditional full inline deduplication scheme (Dedup_SHA1 in
// the paper): every evicted line is SHA-1 hashed on the critical path, the
// full fingerprint index lives in NVMM, and a small on-chip fingerprint
// cache filters lookups. A fingerprint-cache miss forces a fingerprint
// fetch from NVMM before the write can proceed — the NVMM_lookup
// bottleneck of §II-B. Like its real-world counterparts, it trusts the
// cryptographic hash and performs no byte comparison.
type SHA1 struct {
	Base
	fper    fingerprint.Fingerprinter
	fpCache *cache.Cache[uint64] // digest summary -> physical line
	fpIndex map[[20]byte]uint64  // NVMM-resident full index
	physFP  map[uint64][20]byte  // reverse map for freeing

	// def holds the deferred stores of one WriteBatch call.
	def Deferred
}

// NewSHA1 constructs the Dedup_SHA1 scheme on env.
func NewSHA1(env *memctrl.Env) *SHA1 {
	s := &SHA1{
		Base:    NewBase(env),
		fper:    fingerprint.New(fingerprint.KindSHA1, env.Cfg.FP),
		fpIndex: make(map[[20]byte]uint64),
		physFP:  make(map[uint64][20]byte),
	}
	entries := env.Cfg.SHA1.FPCacheBytes / env.Cfg.SHA1.FPEntryBytes
	if entries < 1 {
		entries = 1
	}
	s.fpCache = cache.New[uint64](entries, 8, cache.LRU)
	if env.Tel != nil {
		s.fpCache.SetProbe(env.Tel.CacheProbe("sha1-fp"))
	}
	s.OnFree = s.purge
	return s
}

func (s *SHA1) purge(phys uint64) {
	key, ok := s.physFP[phys]
	if !ok {
		return
	}
	delete(s.physFP, phys)
	delete(s.fpIndex, key)
	s.fpCache.Delete(binary.LittleEndian.Uint64(key[:8]))
}

// Name implements memctrl.Scheme.
func (s *SHA1) Name() string { return "dedup-sha1" }

// Write implements memctrl.Scheme.
func (s *SHA1) Write(logical uint64, data *ecc.Line, at sim.Time) memctrl.WriteOutcome {
	s.St.Writes++
	cfg := s.Env.Cfg
	d := s.fper.Fingerprint(data)
	s.Env.Energy.Fingerprint += s.fper.Energy()
	s.Env.ChargeSRAM()

	// The hash unit and fingerprint-cache probe occupy the controller
	// front end serially: this is what cascade-blocks queued requests.
	feStart, feEnd := s.Env.Frontend.Reserve(at, s.fper.Latency()+cfg.Meta.SRAMLatency)
	bd := stats.Breakdown{
		// Waiting for the hash unit is part of the fingerprint-computation
		// cost: it is the cascade blocking expensive hashes cause (§II-B).
		FPCompute:    (feStart - at) + s.fper.Latency(),
		FPLookupSRAM: cfg.Meta.SRAMLatency,
	}
	t := feEnd

	if phys, hit := s.fpCache.Get(d.Short); hit {
		s.St.FPCacheHits++
		s.St.DupByCache++
		mapLat := s.DedupHit(logical, phys, t)
		bd.Metadata = mapLat
		s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPCache, logical, phys, true, at, t+mapLat, &bd)
		return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: phys}
	}
	s.St.FPCacheMisses++

	// Full deduplication: the authoritative index is in NVMM, so the miss
	// costs a serial metadata read on the critical write path.
	rr := s.Env.Device.ReadMeta(s.Env.MetaLineFor(d.Short), t)
	s.St.FPNVMMLookups++
	bd.FPLookupNVMM = rr.Done - t
	t = rr.Done

	if phys, ok := s.fpIndex[d.Key]; ok {
		s.St.DupByNVMM++
		s.fpCache.Put(d.Short, phys)
		mapLat := s.DedupHit(logical, phys, t)
		bd.Metadata = mapLat
		s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPNVMM, logical, phys, true, at, t+mapLat, &bd)
		return memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: phys}
	}

	// Unique line: encrypt (serially, after the lookup resolved) and write.
	// The AES engine is dedicated, so encryption adds latency without
	// occupying the controller pipeline.
	bd.Encrypt = cfg.Crypto.EncryptLatency
	phys, wr, mapLat := s.StoreUnique(logical, data, t+cfg.Crypto.EncryptLatency)
	s.fpIndex[d.Key] = phys
	s.physFP[phys] = d.Key
	s.fpCache.Put(d.Short, phys)
	// The new fingerprint entry is persisted to NVMM off the critical path.
	s.Env.Device.WriteMeta(s.Env.MetaLineFor(d.Short), wr.AcceptedAt)
	bd.Queue += wr.Stall
	bd.Media = wr.ServiceLatency
	bd.Metadata = mapLat
	done := wr.AcceptedAt + wr.ServiceLatency
	s.Env.Tel.OnWrite(s.Name(), telemetry.DecUniqueFPMiss, logical, phys, false, at, done, &bd)
	return memctrl.WriteOutcome{
		Done:      done,
		Breakdown: bd,
		PhysAddr:  phys,
	}
}

// WriteBatch implements memctrl.BatchWriter: the same decision sequence as
// Write per op (hash, cache probe, NVMM lookup on a miss), with unique
// stores deferred so their pads come from one batched AES pass. SHA-1
// trusts the hash and never reads a data line during a write, so no
// mid-batch flush is ever needed; the index updates at decision time make
// an intra-batch duplicate of a deferred store hit the cache path. The
// posted fingerprint-store write depends on the media accept time, so it
// moves to the flush with its store.
func (s *SHA1) WriteBatch(ops []memctrl.BatchWrite) {
	cfg := s.Env.Cfg
	for i := range ops {
		op := &ops[i]
		s.St.Writes++
		d := s.fper.Fingerprint(op.Data)
		s.Env.Energy.Fingerprint += s.fper.Energy()
		s.Env.ChargeSRAM()
		feStart, feEnd := s.Env.Frontend.Reserve(op.At, s.fper.Latency()+cfg.Meta.SRAMLatency)
		bd := stats.Breakdown{
			FPCompute:    (feStart - op.At) + s.fper.Latency(),
			FPLookupSRAM: cfg.Meta.SRAMLatency,
		}
		t := feEnd

		if phys, hit := s.fpCache.Get(d.Short); hit {
			s.St.FPCacheHits++
			s.St.DupByCache++
			mapLat := s.DedupHit(op.Logical, phys, t)
			bd.Metadata = mapLat
			s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPCache, op.Logical, phys, true, op.At, t+mapLat, &bd)
			op.Out = memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: phys}
			continue
		}
		s.St.FPCacheMisses++
		rr := s.Env.Device.ReadMeta(s.Env.MetaLineFor(d.Short), t)
		s.St.FPNVMMLookups++
		bd.FPLookupNVMM = rr.Done - t
		t = rr.Done

		if phys, ok := s.fpIndex[d.Key]; ok {
			s.St.DupByNVMM++
			s.fpCache.Put(d.Short, phys)
			mapLat := s.DedupHit(op.Logical, phys, t)
			bd.Metadata = mapLat
			s.Env.Tel.OnWrite(s.Name(), telemetry.DecDupFPNVMM, op.Logical, phys, true, op.At, t+mapLat, &bd)
			op.Out = memctrl.WriteOutcome{Done: t + mapLat, Breakdown: bd, Deduplicated: true, PhysAddr: phys}
			continue
		}

		bd.Encrypt = cfg.Crypto.EncryptLatency
		phys, mapLat := s.StoreUniqueDeferred(&s.def, op.Logical, op.Data, t+cfg.Crypto.EncryptLatency, i, 0, d.Short)
		s.fpIndex[d.Key] = phys
		s.physFP[phys] = d.Key
		s.fpCache.Put(d.Short, phys)
		bd.Metadata = mapLat
		op.Out = memctrl.WriteOutcome{Breakdown: bd, PhysAddr: phys}
	}

	s.def.Flush(s.Env)
	entries := s.def.Entries()
	for i := range entries {
		p := &entries[i]
		op := &ops[p.Slot]
		op.Out.Breakdown.Queue += p.Wr.Stall
		op.Out.Breakdown.Media = p.Wr.ServiceLatency
		op.Out.Done = p.Wr.AcceptedAt + p.Wr.ServiceLatency
		// The new fingerprint entry is persisted to NVMM off the critical
		// path, once its data write has been accepted.
		s.Env.Device.WriteMeta(s.Env.MetaLineFor(p.Aux), p.Wr.AcceptedAt)
		s.Env.Tel.OnWrite(s.Name(), telemetry.DecUniqueFPMiss, p.Logical, p.Phys, false, op.At, op.Out.Done, &op.Out.Breakdown)
	}
	s.def.Reset()
}

// Read implements memctrl.Scheme.
func (s *SHA1) Read(logical uint64, at sim.Time) memctrl.ReadOutcome {
	out := s.ReadPath(logical, at)
	s.Env.Tel.OnRead(s.Name(), logical, out.Hit, at, out.Done)
	return out
}

// MetadataNVMM implements memctrl.Scheme: the full SHA-1 index plus the
// AMT backing store.
func (s *SHA1) MetadataNVMM() int64 {
	return int64(len(s.fpIndex))*int64(s.Env.Cfg.SHA1.FPEntryBytes) + s.AMT.NVMMBytes()
}

// MetadataSRAM implements memctrl.Scheme.
func (s *SHA1) MetadataSRAM() int64 {
	return int64(s.Env.Cfg.SHA1.FPCacheBytes) + s.MetadataSRAMBase()
}

// FPCacheStats exposes fingerprint-cache statistics for experiments.
func (s *SHA1) FPCacheStats() cache.Stats { return s.fpCache.Stats }

// Crash implements memctrl.Crasher: the on-chip fingerprint cache is lost;
// the NVMM-resident fingerprint index and AMT survive, so deduplication
// resumes (with cold caches) and no data is lost.
func (s *SHA1) Crash(now sim.Time) {
	s.CrashBase(now)
	s.fpCache.Clear()
}
