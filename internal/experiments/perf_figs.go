package experiments

import (
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// runResultAlias shortens the figure-metric signatures.
type runResultAlias = memctrl.RunResult

// SchemeValues maps scheme name -> value for one application row.
type SchemeValues map[string]float64

// AppRow is a generic per-application figure row.
type AppRow struct {
	App    string
	Values SchemeValues
}

// schemeFigure evaluates metric(base, scheme) for every application and
// dedup scheme, appending an average row.
func (s *Suite) schemeFigure(title string, metric func(base, r *runResultAlias) float64) ([]AppRow, *stats.Table, error) {
	return s.schemeFigureApp(title, func(_ string, base, r *runResultAlias) float64 {
		return metric(base, r)
	})
}

// schemeFigureApp is schemeFigure with the application name available to
// the metric (needed by the IPC model).
func (s *Suite) schemeFigureApp(title string, metric func(app string, base, r *runResultAlias) float64) ([]AppRow, *stats.Table, error) {
	tb := stats.NewTable(title, "app", "dedup-sha1", "dewrite", "esd")
	var rows []AppRow
	sums := SchemeValues{}
	for _, app := range s.AppNames() {
		base, err := s.Result(app, SchemeBaseline)
		if err != nil {
			return nil, nil, err
		}
		row := AppRow{App: app, Values: SchemeValues{}}
		for _, scheme := range DedupSchemes() {
			r, err := s.Result(app, scheme)
			if err != nil {
				return nil, nil, err
			}
			v := metric(app, base, r)
			row.Values[scheme] = v
			sums[scheme] += v
		}
		rows = append(rows, row)
		tb.AddRow(app, row.Values[SchemeSHA1], row.Values[SchemeDeWrite], row.Values[SchemeESD])
	}
	if n := float64(len(rows)); n > 0 {
		tb.AddRow("average", sums[SchemeSHA1]/n, sums[SchemeDeWrite]/n, sums[SchemeESD]/n)
	}
	return rows, tb, nil
}

// Fig2 reproduces the worst-case normalized performance study (paper
// Fig. 2, leela and lbm): scheme performance normalized to the baseline,
// where performance is 1/mean-latency for writes and reads.
func Fig2(opts Options) ([]AppRow, *stats.Table, error) {
	opts.Apps = []string{"leela", "lbm"}
	s := NewSuite(opts)
	tb := stats.NewTable("Fig. 2 — Normalized performance in the worst case (vs Baseline)",
		"app", "metric", "dedup-sha1", "dewrite", "esd")
	var rows []AppRow
	for _, app := range s.AppNames() {
		base, err := s.Result(app, SchemeBaseline)
		if err != nil {
			return nil, nil, err
		}
		wrote := AppRow{App: app + "/write", Values: SchemeValues{}}
		read := AppRow{App: app + "/read", Values: SchemeValues{}}
		for _, scheme := range DedupSchemes() {
			r, err := s.Result(app, scheme)
			if err != nil {
				return nil, nil, err
			}
			wrote.Values[scheme] = ratio(base.WriteHist.Mean(), r.WriteHist.Mean())
			read.Values[scheme] = ratio(base.ReadHist.Mean(), r.ReadHist.Mean())
		}
		rows = append(rows, wrote, read)
		tb.AddRow(app, "write-perf", wrote.Values[SchemeSHA1], wrote.Values[SchemeDeWrite], wrote.Values[SchemeESD])
		tb.AddRow(app, "read-perf", read.Values[SchemeSHA1], read.Values[SchemeDeWrite], read.Values[SchemeESD])
	}
	return rows, tb, nil
}

// Fig5Row quantifies full deduplication's NVMM fingerprint-lookup cost for
// one application (paper Fig. 5, measured on Dedup_SHA1).
type Fig5Row struct {
	App string
	// DupByCacheShare and DupByNVMMShare are the fractions of all writes
	// whose duplicates were filtered by cached vs NVMM-resident
	// fingerprints.
	DupByCacheShare float64
	DupByNVMMShare  float64
	// LookupLatencyShare is the share of total write-path latency spent on
	// fingerprint NVMM lookups.
	LookupLatencyShare float64
}

// Fig5 measures duplicate filtering by fingerprint location and the
// NVMM-lookup latency share (paper: 51.0% / 13.7% filtered, 49.2% average
// latency share).
func Fig5(opts Options) ([]Fig5Row, *stats.Table, error) {
	s := NewSuite(opts)
	tb := stats.NewTable("Fig. 5 — Duplicates filtered by cache vs NVMM fingerprints (Dedup_SHA1), %",
		"app", "filtered-by-cache", "filtered-by-nvmm", "nvmm-lookup-latency-share")
	var rows []Fig5Row
	var avg Fig5Row
	for _, app := range s.AppNames() {
		r, err := s.Result(app, SchemeSHA1)
		if err != nil {
			return nil, nil, err
		}
		row := Fig5Row{App: app}
		if r.Writes > 0 {
			row.DupByCacheShare = float64(r.Scheme.DupByCache) / float64(r.Writes)
			row.DupByNVMMShare = float64(r.Scheme.DupByNVMM) / float64(r.Writes)
		}
		if total := r.Breakdown.Total(); total > 0 {
			row.LookupLatencyShare = float64(r.Breakdown.FPLookupNVMM) / float64(total)
		}
		rows = append(rows, row)
		avg.DupByCacheShare += row.DupByCacheShare
		avg.DupByNVMMShare += row.DupByNVMMShare
		avg.LookupLatencyShare += row.LookupLatencyShare
		tb.AddRow(app, row.DupByCacheShare*100, row.DupByNVMMShare*100, row.LookupLatencyShare*100)
	}
	if n := float64(len(rows)); n > 0 {
		tb.AddRow("average", avg.DupByCacheShare/n*100, avg.DupByNVMMShare/n*100, avg.LookupLatencyShare/n*100)
	}
	return rows, tb, nil
}

func ratio(base, v sim.Time) float64 {
	if v <= 0 {
		return 0
	}
	return float64(base) / float64(v)
}

// Fig11 measures write reduction per scheme normalized to Baseline
// (paper: ESD 47.8% average, full dedup ~18pp more).
func Fig11(opts Options) ([]AppRow, *stats.Table, error) {
	s := NewSuite(opts)
	return s.schemeFigure("Fig. 11 — NVMM write reduction vs Baseline (%)",
		func(base, r *runResultAlias) float64 {
			return r.WriteReductionVs(base) * 100
		})
}

// Fig12 measures write speedup vs Baseline (mean write latency ratio).
func Fig12(opts Options) ([]AppRow, *stats.Table, error) {
	s := NewSuite(opts)
	return s.schemeFigure("Fig. 12 — Write speedup vs Baseline",
		func(base, r *runResultAlias) float64 {
			return ratio(base.WriteHist.Mean(), r.WriteHist.Mean())
		})
}

// Fig13 measures read speedup vs Baseline (mean read latency ratio).
func Fig13(opts Options) ([]AppRow, *stats.Table, error) {
	s := NewSuite(opts)
	return s.schemeFigure("Fig. 13 — Read speedup vs Baseline",
		func(base, r *runResultAlias) float64 {
			return ratio(base.ReadHist.Mean(), r.ReadHist.Mean())
		})
}

// Fig14 measures IPC normalized to Baseline using the profile's MPKI.
func Fig14(opts Options) ([]AppRow, *stats.Table, error) {
	s := NewSuite(opts)
	return s.schemeFigureApp("Fig. 14 — IPC normalized to Baseline",
		func(app string, base, r *runResultAlias) float64 {
			p := s.profileOf(app)
			b := base.IPC(s.Opts.Cfg.CPU, p.MissesPerKiloInstr)
			v := r.IPC(s.Opts.Cfg.CPU, p.MissesPerKiloInstr)
			if b <= 0 {
				return 0
			}
			return v / b
		})
}

// Fig16 measures energy consumption normalized to Baseline (lower is
// better; paper reports reductions up to 69.3%/69.2%/56.6%).
func Fig16(opts Options) ([]AppRow, *stats.Table, error) {
	s := NewSuite(opts)
	return s.schemeFigure("Fig. 16 — Energy normalized to Baseline",
		func(base, r *runResultAlias) float64 {
			if base.Energy.Total() <= 0 {
				return 0
			}
			return r.Energy.Total() / base.Energy.Total()
		})
}
