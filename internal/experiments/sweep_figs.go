package experiments

import (
	"github.com/esdsim/esd/internal/core"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/workload"
)

// Fig18Sizes are the metadata-cache capacities the paper sweeps.
var Fig18Sizes = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1024 << 10, 2048 << 10}

// Fig18Row is one cache-size point of the sensitivity study.
type Fig18Row struct {
	SizeBytes int
	// EFITHitLRCU and EFITHitLRU are the EFIT cache hit rates with and
	// without the LRCU policy (Fig. 18a).
	EFITHitLRCU float64
	EFITHitLRU  float64
	// AMTHit is the AMT hot-entry cache hit rate (Fig. 18b).
	AMTHit float64
	// DedupRateLRCU tracks how much the cache size buys in eliminated
	// writes (not in the paper's plot, but the mechanism behind it).
	DedupRateLRCU float64
}

// Fig18 sweeps the EFIT and AMT cache sizes (paper Fig. 18: hit rates
// saturate around 512 KB, validating selective deduplication).
// The sweep aggregates over the evaluated applications.
func Fig18(opts Options) ([]Fig18Row, *stats.Table, error) {
	apps := opts.apps()
	tb := stats.NewTable("Fig. 18 — Cache hit rates vs cache size",
		"size-KB", "efit-hit-lrcu", "efit-hit-lru", "amt-hit", "dedup-rate")
	var rows []Fig18Row
	for _, size := range Fig18Sizes {
		row := Fig18Row{SizeBytes: size}
		var n float64
		for _, p := range apps {
			// LRCU run (EFIT size under test; AMT cache scales with the
			// same sweep for Fig. 18b).
			cfg := opts.Cfg
			cfg.Meta.EFITCacheBytes = size
			cfg.Meta.AMTCacheBytes = size
			env := memctrl.NewEnv(cfg)
			esd := core.New(env)
			ctl := memctrl.NewController(env, esd)
			ctl.Warmup = opts.Warmup
			if _, err := ctl.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests)); err != nil {
				return nil, nil, err
			}
			row.EFITHitLRCU += esd.EFITStats().HitRate()
			row.AMTHit += esd.AMT.CacheStats().HitRate()
			row.DedupRateLRCU += esd.Stats().DedupRate()

			// LRU ablation run.
			envL := memctrl.NewEnv(cfg)
			esdL := core.New(envL, core.WithLRU())
			ctlL := memctrl.NewController(envL, esdL)
			ctlL.Warmup = opts.Warmup
			if _, err := ctlL.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests)); err != nil {
				return nil, nil, err
			}
			row.EFITHitLRU += esdL.EFITStats().HitRate()
			n++
		}
		if n > 0 {
			row.EFITHitLRCU /= n
			row.EFITHitLRU /= n
			row.AMTHit /= n
			row.DedupRateLRCU /= n
		}
		rows = append(rows, row)
		tb.AddRow(size>>10, row.EFITHitLRCU, row.EFITHitLRU, row.AMTHit, row.DedupRateLRCU)
	}
	return rows, tb, nil
}

// AblationPolicyRow compares EFIT replacement policies at the default
// cache size — an ablation beyond the paper's LRCU-vs-LRU sweep.
type AblationPolicyRow struct {
	Policy    string
	HitRate   float64
	DedupRate float64
}

// AblationEFITPolicy evaluates LRCU vs LRU for the EFIT cache.
func AblationEFITPolicy(opts Options) ([]AblationPolicyRow, *stats.Table, error) {
	apps := opts.apps()
	build := map[string][]core.Option{
		"lrcu": nil,
		"lru":  {core.WithLRU()},
	}
	order := []string{"lrcu", "lru"}
	tb := stats.NewTable("Ablation — EFIT replacement policy", "policy", "hit-rate", "dedup-rate")
	var rows []AblationPolicyRow
	for _, name := range order {
		row := AblationPolicyRow{Policy: name}
		var n float64
		for _, p := range apps {
			env := memctrl.NewEnv(opts.Cfg)
			esd := core.New(env, build[name]...)
			ctl := memctrl.NewController(env, esd)
			ctl.Warmup = opts.Warmup
			if _, err := ctl.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests)); err != nil {
				return nil, nil, err
			}
			row.HitRate += esd.EFITStats().HitRate()
			row.DedupRate += esd.Stats().DedupRate()
			n++
		}
		if n > 0 {
			row.HitRate /= n
			row.DedupRate /= n
		}
		rows = append(rows, row)
		tb.AddRow(row.Policy, row.HitRate, row.DedupRate)
	}
	return rows, tb, nil
}

// AblationReferHRow sweeps the referH saturation limit (§III-B sets one
// byte; this quantifies the design choice).
type AblationReferHRow struct {
	ReferHMax int
	DedupRate float64
	Overflows uint64
}

// AblationReferH sweeps the reference-count saturation limit.
func AblationReferH(opts Options) ([]AblationReferHRow, *stats.Table, error) {
	apps := opts.apps()
	tb := stats.NewTable("Ablation — referH saturation limit", "referH-max", "dedup-rate", "overflows")
	var rows []AblationReferHRow
	for _, max := range []int{3, 15, 63, 255} {
		row := AblationReferHRow{ReferHMax: max}
		var n float64
		for _, p := range apps {
			cfg := opts.Cfg
			cfg.ESD.ReferHMax = max
			env := memctrl.NewEnv(cfg)
			esd := core.New(env)
			ctl := memctrl.NewController(env, esd)
			ctl.Warmup = opts.Warmup
			if _, err := ctl.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests)); err != nil {
				return nil, nil, err
			}
			row.DedupRate += esd.Stats().DedupRate()
			row.Overflows += esd.Stats().ReferHOverflows
			n++
		}
		if n > 0 {
			row.DedupRate /= n
		}
		rows = append(rows, row)
		tb.AddRow(row.ReferHMax, row.DedupRate, row.Overflows)
	}
	return rows, tb, nil
}

// AblationSelectiveRow contrasts ESD's selective dedup against a
// hypothetical "ESD with full dedup" (the SHA-1 scheme's lookup structure
// with free fingerprints is approximated by comparing eliminated writes
// and NVMM metadata traffic).
type AblationSelectiveRow struct {
	Scheme        string
	DedupRate     float64
	FPNVMMLookups uint64
	MeanWriteNs   float64
}

// AblationSelective quantifies the selective-vs-full trade-off using the
// measured schemes.
func AblationSelective(opts Options) ([]AblationSelectiveRow, *stats.Table, error) {
	s := NewSuite(opts)
	tb := stats.NewTable("Ablation — selective (ESD) vs full (Dedup_SHA1/DeWrite) deduplication",
		"scheme", "dedup-rate", "fp-nvmm-lookups", "mean-write-ns")
	var rows []AblationSelectiveRow
	for _, scheme := range DedupSchemes() {
		row := AblationSelectiveRow{Scheme: scheme}
		var dedupSum float64
		var n float64
		for _, app := range s.AppNames() {
			r, err := s.Result(app, scheme)
			if err != nil {
				return nil, nil, err
			}
			dedupSum += r.Scheme.DedupRate()
			row.FPNVMMLookups += r.Scheme.FPNVMMLookups
			row.MeanWriteNs += r.WriteHist.Mean().Nanoseconds()
			n++
		}
		if n > 0 {
			row.DedupRate = dedupSum / n
			row.MeanWriteNs /= n
		}
		rows = append(rows, row)
		tb.AddRow(row.Scheme, row.DedupRate, row.FPNVMMLookups, row.MeanWriteNs)
	}
	return rows, tb, nil
}

// AblationCapacityRow compares effective storage capacity across dedup
// designs — the axis on which the BCD extension (partial-line compression)
// improves over exact-only deduplication.
type AblationCapacityRow struct {
	Scheme            string
	EffectiveCapacity float64
	DedupRate         float64
	MeanWriteNs       float64
	MeanReadNs        float64
}

// AblationCapacity runs Dedup_SHA1, ESD and the BCD extension on a
// near-duplicate workload (30% exact repeats, 40% partial duplicates, 30%
// unique among writes) and compares effective capacity (logical bytes per
// physical byte) alongside the latency cost of BCD's base+delta reads.
// Partial duplicates are invisible to exact-only dedup; BCD compresses
// them.
func AblationCapacity(opts Options) ([]AblationCapacityRow, *stats.Table, error) {
	tb := stats.NewTable("Ablation — effective capacity on a near-duplicate workload",
		"scheme", "effective-capacity", "dedup-rate", "mean-write-ns", "mean-read-ns")
	schemes := []string{SchemeSHA1, SchemeESD, SchemeBCD}
	var rows []AblationCapacityRow
	for _, name := range schemes {
		row := AblationCapacityRow{Scheme: name}
		env := memctrl.NewEnv(opts.effectiveCfg())
		sch, err := NewScheme(env, name)
		if err != nil {
			return nil, nil, err
		}
		ctl := memctrl.NewController(env, sch)
		ctl.Warmup = opts.Warmup
		stream := workload.NearDupStream(opts.Seed, opts.Warmup+opts.Requests, 1<<15, dedup.MaxDeltaWords)
		res, err := ctl.Run(stream)
		if err != nil {
			return nil, nil, err
		}
		row.DedupRate = res.Scheme.DedupRate()
		row.MeanWriteNs = res.WriteHist.Mean().Nanoseconds()
		row.MeanReadNs = res.ReadHist.Mean().Nanoseconds()
		if bcd, ok := sch.(*dedup.BCD); ok {
			row.EffectiveCapacity = bcd.EffectiveCapacity()
		} else {
			row.EffectiveCapacity = capacityOf(env, sch)
		}
		rows = append(rows, row)
		tb.AddRow(row.Scheme, row.EffectiveCapacity, row.DedupRate, row.MeanWriteNs, row.MeanReadNs)
	}
	return rows, tb, nil
}

// capacityOf computes logical/physical line ratio for exact-dedup schemes
// via their shared Base plumbing.
func capacityOf(env *memctrl.Env, sch memctrl.Scheme) float64 {
	type based interface {
		LogicalPhysical() (int64, int64)
	}
	if b, ok := sch.(based); ok {
		l, p := b.LogicalPhysical()
		if p > 0 {
			return float64(l) / float64(p)
		}
	}
	return 0
}

// AblationIntegrityRow quantifies the cost of counter-integrity protection
// (Merkle counter tree) per scheme.
type AblationIntegrityRow struct {
	Scheme          string
	MeanReadNs      float64
	MeanReadNsProt  float64
	ReadOverheadPct float64
	TreeNodeFetches uint64
}

// AblationIntegrity runs each scheme with and without the Merkle counter
// tree and reports the read-path overhead of counter authentication — the
// secure-NVMM tax the paper's citations (Synergy, Triad-NVM, Anubis) work
// to reduce, orthogonal to deduplication.
func AblationIntegrity(opts Options) ([]AblationIntegrityRow, *stats.Table, error) {
	apps := opts.apps()
	if len(apps) > 4 {
		apps = apps[:4]
	}
	tb := stats.NewTable("Ablation — Merkle counter-tree integrity overhead",
		"scheme", "read-ns", "read-ns-protected", "overhead-%", "tree-fetches")
	var rows []AblationIntegrityRow
	for _, name := range Schemes() {
		row := AblationIntegrityRow{Scheme: name}
		var n float64
		for _, p := range apps {
			for _, protected := range []bool{false, true} {
				cfg := opts.effectiveCfg()
				cfg.Crypto.IntegrityEnabled = protected
				env := memctrl.NewEnv(cfg)
				sch, err := NewScheme(env, name)
				if err != nil {
					return nil, nil, err
				}
				ctl := memctrl.NewController(env, sch)
				ctl.Warmup = opts.Warmup
				res, err := ctl.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests))
				if err != nil {
					return nil, nil, err
				}
				if protected {
					row.MeanReadNsProt += res.ReadHist.Mean().Nanoseconds()
					row.TreeNodeFetches += env.Integrity.Stats.NodeFetches
				} else {
					row.MeanReadNs += res.ReadHist.Mean().Nanoseconds()
				}
			}
			n++
		}
		if n > 0 {
			row.MeanReadNs /= n
			row.MeanReadNsProt /= n
		}
		if row.MeanReadNs > 0 {
			row.ReadOverheadPct = (row.MeanReadNsProt/row.MeanReadNs - 1) * 100
		}
		rows = append(rows, row)
		tb.AddRow(row.Scheme, row.MeanReadNs, row.MeanReadNsProt, row.ReadOverheadPct, row.TreeNodeFetches)
	}
	return rows, tb, nil
}
