package experiments

import (
	"fmt"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/ecc"
	"github.com/esdsim/esd/internal/fingerprint"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/workload"
	"github.com/esdsim/esd/internal/xrand"
)

// Fig1Row is one bar of Fig. 1: the duplicate rate of LLC-evicted cache
// lines for one application.
type Fig1Row struct {
	App     string
	Suite   workload.Suite
	DupRate float64
}

// Fig1 measures the duplicate cache-line rate per application (paper:
// 33.1%–99.9%, average 62.9%).
func Fig1(opts Options) ([]Fig1Row, *stats.Table, error) {
	var rows []Fig1Row
	tb := stats.NewTable("Fig. 1 — Duplicate rate of cache lines", "app", "suite", "dup-rate-%")
	sum := 0.0
	for _, p := range opts.apps() {
		st, err := workload.MeasureDup(workload.Stream(p, opts.Seed, opts.Requests))
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Fig1Row{App: p.Name, Suite: p.Suite, DupRate: st.DupRate})
		tb.AddRow(p.Name, string(p.Suite), st.DupRate*100)
		sum += st.DupRate
	}
	if len(rows) > 0 {
		tb.AddRow("average", "", sum/float64(len(rows))*100)
	}
	return rows, tb, nil
}

// Fig3Row is one application's reference-count distribution: the share of
// unique cache lines (3a) and of pre-dedup write volume (3b) per class.
type Fig3Row struct {
	App          string
	UniqueShares [workload.NumClasses]float64
	WriteShares  [workload.NumClasses]float64
}

// Fig3 measures the content-locality distributions behind Fig. 3.
func Fig3(opts Options) ([]Fig3Row, *stats.Table, error) {
	var rows []Fig3Row
	tb := stats.NewTable(
		"Fig. 3 — Cache-line distribution before dedup (u-*) and occupied volume (w-*), %",
		"app", "u-num1", "u-num10", "u-num100", "u-num1000", "u-1000+",
		"w-num1", "w-num10", "w-num100", "w-num1000", "w-1000+")
	var agg Fig3Row
	for _, p := range opts.apps() {
		st, err := workload.MeasureDup(workload.Stream(p, opts.Seed, opts.Requests))
		if err != nil {
			return nil, nil, err
		}
		row := Fig3Row{App: p.Name}
		for c := workload.Num1; c < workload.NumClasses; c++ {
			row.UniqueShares[c] = st.UniqueShare(c)
			row.WriteShares[c] = st.WriteShare(c)
			agg.UniqueShares[c] += st.UniqueShare(c)
			agg.WriteShares[c] += st.WriteShare(c)
		}
		rows = append(rows, row)
		tb.AddRow(p.Name,
			row.UniqueShares[0]*100, row.UniqueShares[1]*100, row.UniqueShares[2]*100,
			row.UniqueShares[3]*100, row.UniqueShares[4]*100,
			row.WriteShares[0]*100, row.WriteShares[1]*100, row.WriteShares[2]*100,
			row.WriteShares[3]*100, row.WriteShares[4]*100)
	}
	if n := float64(len(rows)); n > 0 {
		agg.App = "average"
		for c := range agg.UniqueShares {
			agg.UniqueShares[c] /= n
			agg.WriteShares[c] /= n
		}
		tb.AddRow(agg.App,
			agg.UniqueShares[0]*100, agg.UniqueShares[1]*100, agg.UniqueShares[2]*100,
			agg.UniqueShares[3]*100, agg.UniqueShares[4]*100,
			agg.WriteShares[0]*100, agg.WriteShares[1]*100, agg.WriteShares[2]*100,
			agg.WriteShares[3]*100, agg.WriteShares[4]*100)
	}
	return rows, tb, nil
}

// Fig8Row reports the measured fingerprint-collision probability of one
// algorithm over the pooled application contents, normalized to CRC-16.
type Fig8Row struct {
	Kind        fingerprint.Kind
	Collisions  int
	UniquePairs int
	Normalized  float64 // collision count / CRC-16 collision count
}

// Fig8 compares collision probabilities of CRC, ECC and cryptographic
// fingerprints (paper Fig. 8, normalized to the CRC-based method).
// It pools unique contents from every application plus low-entropy
// perturbations, then counts distinct-content fingerprint collisions.
func Fig8(opts Options) ([]Fig8Row, *stats.Table, error) {
	// Build a pooled population of unique lines.
	var pool []ecc.Line
	seen := map[ecc.Line]bool{}
	perApp := opts.Requests / 4
	if perApp < 1000 {
		perApp = 1000
	}
	for _, p := range opts.apps() {
		g := workload.NewGenerator(p, opts.Seed, perApp)
		for i := 0; i < perApp; i++ {
			rec, err := g.Next()
			if err != nil {
				return nil, nil, err
			}
			if !seen[rec.Data] {
				seen[rec.Data] = true
				pool = append(pool, rec.Data)
			}
		}
	}
	// Add clustered low-entropy variants to stress narrow fingerprints the
	// way similar real-world lines do.
	r := xrand.New(opts.Seed ^ 0xF18)
	base := len(pool)
	for i := 0; i < base/4; i++ {
		l := pool[r.Intn(base)]
		ecc.FlipBit(&l, r.Intn(512))
		if !seen[l] {
			seen[l] = true
			pool = append(pool, l)
		}
	}

	kinds := []fingerprint.Kind{
		fingerprint.KindCRC16, fingerprint.KindCRC32, fingerprint.KindCRC64,
		fingerprint.KindECC, fingerprint.KindMD5, fingerprint.KindSHA1,
	}
	costs := config.Default().FP
	rows := make([]Fig8Row, 0, len(kinds))
	for _, kind := range kinds {
		fp := fingerprint.New(kind, costs)
		byDigest := map[fingerprint.Digest]int{}
		collisions := 0
		for i := range pool {
			d := fp.Fingerprint(&pool[i])
			if prev, ok := byDigest[d]; ok && pool[prev] != pool[i] {
				collisions++
			} else if !ok {
				byDigest[d] = i
			}
		}
		rows = append(rows, Fig8Row{Kind: kind, Collisions: collisions, UniquePairs: len(pool)})
	}
	crcBase := rows[0].Collisions
	tb := stats.NewTable(
		fmt.Sprintf("Fig. 8 — Fingerprint collisions over %d unique lines (normalized to CRC-16)", len(pool)),
		"fingerprint", "bits", "collisions", "normalized")
	for i := range rows {
		if crcBase > 0 {
			rows[i].Normalized = float64(rows[i].Collisions) / float64(crcBase)
		}
		tb.AddRow(rows[i].Kind.String(), rows[i].Kind.Bits(), rows[i].Collisions, rows[i].Normalized)
	}
	return rows, tb, nil
}
