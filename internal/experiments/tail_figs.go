package experiments

import (
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
)

// Fig15Apps are the eight applications the paper selects for the write
// latency CDF study.
var Fig15Apps = []string{
	"gcc", "leela", "bodytrack", "dedup", "facesim", "fluidanimate", "wrf", "x264",
}

// Fig15Row holds one (application, scheme) write-latency distribution.
type Fig15Row struct {
	App    string
	Scheme string
	P50    sim.Time
	P90    sim.Time
	P99    sim.Time
	P999   sim.Time
	Max    sim.Time
	CDF    []stats.CDFPoint
}

// Fig15 reproduces the write-latency CDF / tail-latency study (paper
// Fig. 15) for the three dedup schemes over the eight selected
// applications.
func Fig15(opts Options) ([]Fig15Row, *stats.Table, error) {
	opts.Apps = Fig15Apps
	s := NewSuite(opts)
	tb := stats.NewTable("Fig. 15 — Write latency distribution (ns)",
		"app", "scheme", "p50", "p90", "p99", "p99.9", "max")
	var rows []Fig15Row
	for _, app := range s.AppNames() {
		for _, scheme := range DedupSchemes() {
			r, err := s.Result(app, scheme)
			if err != nil {
				return nil, nil, err
			}
			row := Fig15Row{
				App:    app,
				Scheme: scheme,
				P50:    r.WriteHist.Percentile(0.5),
				P90:    r.WriteHist.Percentile(0.9),
				P99:    r.WriteHist.Percentile(0.99),
				P999:   r.WriteHist.Percentile(0.999),
				Max:    r.WriteHist.Max(),
				CDF:    r.WriteHist.CDF(),
			}
			rows = append(rows, row)
			tb.AddRow(app, scheme,
				row.P50.Nanoseconds(), row.P90.Nanoseconds(),
				row.P99.Nanoseconds(), row.P999.Nanoseconds(), row.Max.Nanoseconds())
		}
	}
	return rows, tb, nil
}

// Fig17Row is one scheme's write-latency profile, as fractions of the
// total write-path time, folded into the paper's four categories.
type Fig17Row struct {
	Scheme string
	// FPCompute is fingerprint computation (hashing + on-chip probes).
	FPCompute float64
	// FPLookupNVMM is fingerprint fetches from NVMM.
	FPLookupNVMM float64
	// ReadCompare is reading similar lines for comparison.
	ReadCompare float64
	// WriteUnique is everything spent writing unique lines: encryption,
	// queueing, media, and metadata upkeep.
	WriteUnique float64
}

// Fig17 aggregates the write-latency breakdown over all applications
// (paper Fig. 17: Dedup_SHA1 ≈ 80% fingerprint computation; DeWrite pays
// both CRC and NVMM lookups; ESD is dominated by the reads and writes of
// cache lines).
func Fig17(opts Options) ([]Fig17Row, *stats.Table, error) {
	s := NewSuite(opts)
	tb := stats.NewTable("Fig. 17 — Write latency profile (fraction of write-path time)",
		"scheme", "fp-compute", "fp-nvmm-lookup", "read-compare", "write-unique")
	var rows []Fig17Row
	for _, scheme := range DedupSchemes() {
		var agg stats.Breakdown
		for _, app := range s.AppNames() {
			r, err := s.Result(app, scheme)
			if err != nil {
				return nil, nil, err
			}
			agg.Add(r.Breakdown)
		}
		total := float64(agg.Total())
		if total <= 0 {
			total = 1
		}
		row := Fig17Row{
			Scheme:       scheme,
			FPCompute:    float64(agg.FPCompute+agg.FPLookupSRAM) / total,
			FPLookupNVMM: float64(agg.FPLookupNVMM) / total,
			ReadCompare:  float64(agg.ReadCompare) / total,
			WriteUnique:  float64(agg.Encrypt+agg.Queue+agg.Media+agg.Metadata) / total,
		}
		rows = append(rows, row)
		tb.AddRow(scheme, row.FPCompute, row.FPLookupNVMM, row.ReadCompare, row.WriteUnique)
	}
	return rows, tb, nil
}

// Fig19Row is one scheme's dedup-metadata footprint, normalized to
// Dedup_SHA1 (paper Fig. 19: ESD −81.2%, DeWrite −60.9% vs SHA-1).
type Fig19Row struct {
	Scheme     string
	NVMMBytes  int64
	SRAMBytes  int64
	Normalized float64
}

// Fig19 measures the NVMM-resident deduplication-metadata footprint per
// scheme. The paper's Fig. 19 compares the metadata that consumes NVMM
// space (fingerprint stores and mapping tables); the fixed on-chip SRAM
// caches are identical across schemes and reported separately here.
func Fig19(opts Options) ([]Fig19Row, *stats.Table, error) {
	s := NewSuite(opts)
	totals := map[string]*Fig19Row{}
	for _, scheme := range DedupSchemes() {
		totals[scheme] = &Fig19Row{Scheme: scheme}
		for _, app := range s.AppNames() {
			r, err := s.Result(app, scheme)
			if err != nil {
				return nil, nil, err
			}
			totals[scheme].NVMMBytes += r.MetadataNVMM
			totals[scheme].SRAMBytes += r.MetadataSRAM
		}
	}
	base := float64(totals[SchemeSHA1].NVMMBytes)
	tb := stats.NewTable("Fig. 19 — NVMM metadata overhead normalized to Dedup_SHA1",
		"scheme", "nvmm-bytes", "sram-bytes", "normalized")
	var rows []Fig19Row
	for _, scheme := range DedupSchemes() {
		row := totals[scheme]
		if base > 0 {
			row.Normalized = float64(row.NVMMBytes) / base
		}
		rows = append(rows, *row)
		tb.AddRow(row.Scheme, row.NVMMBytes, row.SRAMBytes, row.Normalized)
	}
	return rows, tb, nil
}
