package experiments

import (
	"fmt"

	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/workload"
)

// VerifyRow is one scheme x application correctness check.
type VerifyRow struct {
	App       string
	Scheme    string
	Requests  uint64
	DedupRate float64
	Passed    bool
	Err       string
}

// VerifyAll replays every (application, scheme) pair — including the BCD
// extension — with the read-back oracle enabled: any read returning data
// that differs from the latest write fails the pair. This is the
// repository's end-to-end correctness harness, runnable as the `verify`
// experiment; deduplication must never trade correctness for speed.
func VerifyAll(opts Options) ([]VerifyRow, *stats.Table, error) {
	schemes := append(Schemes(), SchemeBCD)
	tb := stats.NewTable("Correctness — oracle-verified replay of every scheme x application",
		"app", "scheme", "requests", "dedup-rate", "result")
	var rows []VerifyRow
	failures := 0
	for _, p := range opts.apps() {
		for _, scheme := range schemes {
			env := memctrl.NewEnv(opts.effectiveCfg())
			sch, err := NewScheme(env, scheme)
			if err != nil {
				return nil, nil, err
			}
			ctl := memctrl.NewController(env, sch)
			ctl.VerifyReads = true
			row := VerifyRow{App: p.Name, Scheme: scheme}
			res, err := ctl.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests))
			if err != nil {
				row.Err = err.Error()
				failures++
			} else {
				row.Passed = true
				row.Requests = res.Requests + uint64(opts.Warmup)
				row.DedupRate = res.Scheme.DedupRate()
			}
			rows = append(rows, row)
			result := "PASS"
			if !row.Passed {
				result = "FAIL: " + row.Err
			}
			tb.AddRow(p.Name, scheme, row.Requests, row.DedupRate, result)
		}
	}
	tb.AddRow("total", fmt.Sprintf("%d pairs", len(rows)), "", "",
		fmt.Sprintf("%d failures", failures))
	if failures > 0 {
		return rows, tb, fmt.Errorf("experiments: %d scheme/application pairs failed verification", failures)
	}
	return rows, tb, nil
}
