package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/fingerprint"
)

// smallOpts keeps unit-test campaigns fast: a handful of applications and
// short traces. Shape assertions use generous tolerances accordingly.
func smallOpts(apps ...string) Options {
	opts := DefaultOptions()
	opts.Requests = 6000
	opts.Apps = apps
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 28
	opts.Cfg = cfg
	return opts
}

func TestFig1AverageMatchesPaper(t *testing.T) {
	opts := smallOpts() // all 20 applications
	opts.Requests = 10000
	rows, tb, err := Fig1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20", len(rows))
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.DupRate
	}
	avg := sum / float64(len(rows))
	if math.Abs(avg-0.629) > 0.03 {
		t.Errorf("average duplicate rate %.3f, paper reports 0.629", avg)
	}
	if tb.NumRows() != 21 { // 20 apps + average
		t.Errorf("table rows = %d", tb.NumRows())
	}
}

func TestFig3ContentLocality(t *testing.T) {
	rows, _, err := Fig3(smallOpts("lbm", "mcf", "x264", "dedup"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		hotU := r.UniqueShares[3] + r.UniqueShares[4]
		hotW := r.WriteShares[3] + r.WriteShares[4]
		if hotU > 0.05 {
			t.Errorf("%s: hot unique share %.4f too large", r.App, hotU)
		}
		if hotW < 0.10 {
			t.Errorf("%s: hot write share %.3f too small for content locality", r.App, hotW)
		}
	}
}

func TestFig5FullDedupLookupCost(t *testing.T) {
	rows, _, err := Fig5(smallOpts("gcc", "x264", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DupByCacheShare <= 0 {
			t.Errorf("%s: no duplicates filtered by cache", r.App)
		}
		if r.LookupLatencyShare <= 0 {
			t.Errorf("%s: NVMM lookup cost not observed", r.App)
		}
	}
}

func TestFig8CollisionOrdering(t *testing.T) {
	opts := smallOpts("lbm", "dedup", "imagick", "fluidanimate")
	opts.Requests = 8000
	rows, _, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[fingerprint.Kind]Fig8Row{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	if byKind[fingerprint.KindCRC16].Collisions == 0 {
		t.Fatal("CRC-16 never collided; pool too clean to be meaningful")
	}
	if byKind[fingerprint.KindCRC16].Collisions < byKind[fingerprint.KindCRC32].Collisions {
		t.Error("CRC-16 collided less than CRC-32")
	}
	if byKind[fingerprint.KindSHA1].Collisions != 0 || byKind[fingerprint.KindMD5].Collisions != 0 {
		t.Error("cryptographic hashes collided")
	}
	if byKind[fingerprint.KindECC].Collisions > byKind[fingerprint.KindCRC16].Collisions {
		t.Error("64-bit ECC collided more than CRC-16")
	}
	if byKind[fingerprint.KindCRC16].Normalized != 1 {
		t.Error("normalization base is not CRC-16")
	}
}

func TestFig11WriteReductionShape(t *testing.T) {
	rows, _, err := Fig11(smallOpts("gcc", "x264", "dedup", "leela", "blackscholes"))
	if err != nil {
		t.Fatal(err)
	}
	var esdSum, shaSum float64
	for _, r := range rows {
		if r.Values[SchemeESD] <= 0 {
			t.Errorf("%s: ESD eliminated no writes", r.App)
		}
		esdSum += r.Values[SchemeESD]
		shaSum += r.Values[SchemeSHA1]
	}
	// Full dedup removes at least as much as selective dedup (Fig. 11:
	// ESD trails full dedup by ~18pp on average).
	if esdSum > shaSum+1 {
		t.Errorf("selective dedup (%f) beat full dedup (%f) on write reduction", esdSum, shaSum)
	}
}

func TestFig12WriteSpeedupShape(t *testing.T) {
	rows, _, err := Fig12(smallOpts("gcc", "x264", "dedup", "mcf", "lbm"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's headline: ESD speeds up writes vs Baseline for all
		// applications, and beats Dedup_SHA1 everywhere.
		if r.Values[SchemeESD] <= 1.0 {
			t.Errorf("%s: ESD write speedup %.2f <= 1", r.App, r.Values[SchemeESD])
		}
		if r.Values[SchemeESD] <= r.Values[SchemeSHA1] {
			t.Errorf("%s: ESD (%.2f) not faster than Dedup_SHA1 (%.2f)",
				r.App, r.Values[SchemeESD], r.Values[SchemeSHA1])
		}
	}
}

func TestFig13ReadSpeedupShape(t *testing.T) {
	rows, _, err := Fig13(smallOpts("lbm", "mcf", "dedup"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Reduced write traffic must not hurt reads; for write-intensive
		// apps it helps. Allow a tiny tolerance for AMT overhead.
		if r.Values[SchemeESD] < 0.9 {
			t.Errorf("%s: ESD read speedup %.2f", r.App, r.Values[SchemeESD])
		}
		// Dedup_SHA1's hashing blocks the controller and hurts reads
		// relative to ESD.
		if r.Values[SchemeESD] < r.Values[SchemeSHA1]*0.95 {
			t.Errorf("%s: ESD reads (%.2f) slower than Dedup_SHA1 (%.2f)",
				r.App, r.Values[SchemeESD], r.Values[SchemeSHA1])
		}
	}
}

func TestFig14IPCShape(t *testing.T) {
	rows, _, err := Fig14(smallOpts("lbm", "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Values[SchemeESD] < 0.95 {
			t.Errorf("%s: ESD normalized IPC %.3f < 0.95", r.App, r.Values[SchemeESD])
		}
		if r.Values[SchemeESD] < r.Values[SchemeSHA1] {
			t.Errorf("%s: ESD IPC below Dedup_SHA1", r.App)
		}
	}
}

func TestFig15TailShape(t *testing.T) {
	opts := smallOpts()
	opts.Requests = 5000
	rows, _, err := Fig15(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig15Apps)*3 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]map[string]Fig15Row{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[string]Fig15Row{}
		}
		byApp[r.App][r.Scheme] = r
		if r.P50 > r.P99 || r.P99 > r.Max {
			t.Errorf("%s/%s: percentiles not monotone", r.App, r.Scheme)
		}
		if len(r.CDF) == 0 {
			t.Errorf("%s/%s: empty CDF", r.App, r.Scheme)
		}
	}
	better := 0
	for app, schemes := range byApp {
		if schemes[SchemeESD].P99 <= schemes[SchemeSHA1].P99 {
			better++
		} else {
			t.Logf("%s: ESD P99 %v vs SHA1 %v", app, schemes[SchemeESD].P99, schemes[SchemeSHA1].P99)
		}
	}
	if better < len(byApp)*3/4 {
		t.Errorf("ESD beat Dedup_SHA1 P99 on only %d/%d apps", better, len(byApp))
	}
}

func TestFig16EnergyShape(t *testing.T) {
	rows, _, err := Fig16(smallOpts("dedup", "x264", "mcf", "lbm"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Values[SchemeESD] >= 1.0 {
			t.Errorf("%s: ESD energy %.3f not below Baseline", r.App, r.Values[SchemeESD])
		}
		if r.Values[SchemeESD] >= r.Values[SchemeSHA1] {
			t.Errorf("%s: ESD energy (%.3f) not below Dedup_SHA1 (%.3f)",
				r.App, r.Values[SchemeESD], r.Values[SchemeSHA1])
		}
	}
}

func TestFig17ProfileShape(t *testing.T) {
	rows, _, err := Fig17(smallOpts("gcc", "x264", "leela"))
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]Fig17Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		total := r.FPCompute + r.FPLookupNVMM + r.ReadCompare + r.WriteUnique
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: profile sums to %f", r.Scheme, total)
		}
	}
	// Paper Fig. 17: SHA-1's write latency is dominated by fingerprint
	// computation (~80%); ESD spends nothing on fingerprints or NVMM
	// lookups.
	if byScheme[SchemeSHA1].FPCompute < 0.4 {
		t.Errorf("Dedup_SHA1 fp-compute share %.2f, want dominant", byScheme[SchemeSHA1].FPCompute)
	}
	if byScheme[SchemeESD].FPLookupNVMM != 0 {
		t.Error("ESD shows NVMM fingerprint lookups")
	}
	if byScheme[SchemeESD].FPCompute > 0.1 {
		t.Errorf("ESD fp share %.2f, want tiny", byScheme[SchemeESD].FPCompute)
	}
	if byScheme[SchemeDeWrite].FPLookupNVMM <= 0 {
		t.Error("DeWrite shows no NVMM lookups despite full dedup")
	}
}

func TestFig18SweepShape(t *testing.T) {
	opts := smallOpts("mcf", "x264")
	opts.Requests = 5000
	rows, _, err := Fig18(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig18Sizes) {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].EFITHitLRCU+0.05 < rows[i-1].EFITHitLRCU {
			t.Errorf("EFIT hit rate regressed with size: %v", rows)
		}
	}
	// LRCU should not be worse than LRU at small sizes (where the policy
	// matters most).
	if rows[0].EFITHitLRCU+0.02 < rows[0].EFITHitLRU {
		t.Errorf("LRCU (%.3f) below LRU (%.3f) at the smallest size",
			rows[0].EFITHitLRCU, rows[0].EFITHitLRU)
	}
}

func TestFig19MetadataShape(t *testing.T) {
	rows, _, err := Fig19(smallOpts("gcc", "x264", "dedup"))
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]Fig19Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	if byScheme[SchemeSHA1].Normalized != 1 {
		t.Error("normalization base is not Dedup_SHA1")
	}
	if byScheme[SchemeESD].Normalized >= byScheme[SchemeDeWrite].Normalized {
		t.Errorf("ESD metadata (%.3f) not below DeWrite (%.3f)",
			byScheme[SchemeESD].Normalized, byScheme[SchemeDeWrite].Normalized)
	}
	if byScheme[SchemeESD].Normalized >= 0.6 {
		t.Errorf("ESD metadata %.3f, paper reports ~0.19", byScheme[SchemeESD].Normalized)
	}
}

func TestAblations(t *testing.T) {
	opts := smallOpts("x264", "mcf")
	opts.Requests = 4000

	policies, _, err := AblationEFITPolicy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 2 {
		t.Fatalf("%d policy rows", len(policies))
	}

	refs, _, err := AblationReferH(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Larger referH means fewer overflows.
	for i := 1; i < len(refs); i++ {
		if refs[i].Overflows > refs[i-1].Overflows {
			t.Errorf("overflows increased with referH: %+v", refs)
		}
	}

	sel, _, err := AblationSelective(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sel {
		if r.Scheme == SchemeESD && r.FPNVMMLookups != 0 {
			t.Error("ESD performed NVMM lookups")
		}
	}
}

func TestRegistryCompleteAndRunnable(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig5", "fig8", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ablation-policy", "ablation-referh", "ablation-selective",
		"hybrid",
	}
	reg := Registry()
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("registry missing %q", name)
		}
	}
	if _, err := Run("nope", DefaultOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Smoke-run one cheap experiment through the registry path.
	tb, err := Run("fig1", smallOpts("leela", "nab"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "leela") {
		t.Error("fig1 table missing app row")
	}
}

// TestFigHybridShape pins the ESD+CARAM-vs-ESD comparison: every ratio
// is defined, the DRAM tier actually engages on a small buffer (so the
// numbers measure the tier and not a no-op), and the table carries one
// row per app plus the average.
func TestFigHybridShape(t *testing.T) {
	opts := smallOpts("lbm", "dedup", "mcf")
	opts.Cfg.Media.DRAM.CapacityBytes = 64 << 10 // 1024 lines: force churn
	opts.Cfg.Media.PromoteThreshold = 2
	rows, tb, err := FigHybrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	engaged := false
	for _, r := range rows {
		if r.WriteSpeedup <= 0 || r.ReadSpeedup <= 0 {
			t.Errorf("%s: speedups %.3f/%.3f not positive", r.App, r.WriteSpeedup, r.ReadSpeedup)
		}
		if r.EnergyRatio <= 0 || r.DeviceWriteRatio <= 0 || r.MaxWearRatio <= 0 {
			t.Errorf("%s: undefined ratio in %+v", r.App, r)
		}
		if r.Promotions > 0 && r.AbsorbedWrites > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Errorf("no app engaged the hybrid tier: %+v", rows)
	}
	if tb.NumRows() != len(rows)+1 {
		t.Errorf("table rows = %d, want %d", tb.NumRows(), len(rows)+1)
	}
}

func TestSuiteCachesResults(t *testing.T) {
	s := NewSuite(smallOpts("leela"))
	a, err := s.Result("leela", SchemeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result("leela", SchemeBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("suite re-ran a cached result")
	}
	if len(s.sortedKeys()) != 1 {
		t.Fatalf("cache keys: %v", s.sortedKeys())
	}
	if _, err := s.Result("nosuch", SchemeBaseline); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestNewSchemeRejectsUnknown(t *testing.T) {
	if _, err := NewScheme(nil, "bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRenderChartSmoke(t *testing.T) {
	opts := smallOpts("leela", "gcc")
	var sb strings.Builder
	if err := RenderChart("fig12", opts, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 12", "leela", "gcc", "esd"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	sb.Reset()
	fig15opts := opts
	fig15opts.Requests = 3000
	if err := RenderChart("fig15", fig15opts, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "log scale") {
		t.Error("fig15 chart missing CDF axis")
	}
	if err := RenderChart("fig19", opts, &sb); err == nil {
		t.Error("chartless figure accepted")
	}
}

func TestWriteReportSmoke(t *testing.T) {
	opts := smallOpts("leela", "x264")
	opts.Requests = 4000
	opts.Warmup = 2000
	var sb strings.Builder
	if err := WriteReport(opts, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# EXPERIMENTS", "Fig. 1", "Fig. 11", "Fig. 19", "Ablations",
		"**Paper:**", "Shape",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFPCacheScaleShrinksCaches(t *testing.T) {
	opts := DefaultOptions()
	opts.FPCacheScale = 16
	cfg := opts.effectiveCfg()
	if cfg.Meta.EFITCacheBytes != opts.Cfg.Meta.EFITCacheBytes/16 {
		t.Fatalf("EFIT not scaled: %d", cfg.Meta.EFITCacheBytes)
	}
	if cfg.SHA1.FPCacheBytes != opts.Cfg.SHA1.FPCacheBytes/16 {
		t.Fatalf("SHA1 cache not scaled")
	}
	// AMT deliberately unscaled.
	if cfg.Meta.AMTCacheBytes != opts.Cfg.Meta.AMTCacheBytes {
		t.Fatal("AMT cache must not scale")
	}
	// Extreme scales floor at one entry.
	opts.FPCacheScale = 1 << 30
	cfg = opts.effectiveCfg()
	if cfg.Meta.EFITCacheBytes < cfg.Meta.EFITEntryBytes {
		t.Fatal("EFIT scaled below one entry")
	}
}

func TestAblationCapacityBCDWins(t *testing.T) {
	opts := smallOpts()
	opts.Requests = 10000
	opts.Warmup = 5000
	rows, _, err := AblationCapacity(opts)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]AblationCapacityRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	bcd := byScheme[SchemeBCD]
	esd := byScheme[SchemeESD]
	if bcd.EffectiveCapacity <= esd.EffectiveCapacity {
		t.Errorf("BCD capacity %.2f not above exact dedup %.2f on near-dup workload",
			bcd.EffectiveCapacity, esd.EffectiveCapacity)
	}
	if bcd.DedupRate <= esd.DedupRate {
		t.Error("BCD did not eliminate more writes than exact dedup")
	}
	// The price: reconstruction reads make BCD reads slower than ESD's.
	if bcd.MeanReadNs <= esd.MeanReadNs {
		t.Error("BCD reads unexpectedly free")
	}
}

func TestMultiSeedAggregates(t *testing.T) {
	opts := smallOpts("leela")
	opts.Requests = 3000
	opts.Warmup = 1500
	rows, tb, err := MultiSeed("fig12", opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // one app x three dedup schemes
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.N != 3 {
			t.Errorf("%s/%s: N = %d", r.App, r.Scheme, r.N)
		}
		if r.Mean <= 0 {
			t.Errorf("%s/%s: mean %v", r.App, r.Scheme, r.Mean)
		}
		// Different seeds must produce some variation, and bounded
		// variation: a coefficient of variation above 50% would mean the
		// figures are noise.
		if r.Mean > 0 && r.Std/r.Mean > 0.5 {
			t.Errorf("%s/%s: cv %.2f too high", r.App, r.Scheme, r.Std/r.Mean)
		}
	}
	if tb.NumRows() != 3 {
		t.Fatalf("table rows %d", tb.NumRows())
	}
	if _, _, err := MultiSeed("fig15", opts, 3); err == nil {
		t.Error("unsupported figure accepted")
	}
	if _, _, err := MultiSeed("fig12", opts, 1); err == nil {
		t.Error("single seed accepted")
	}
}

func TestAblationIntegrityShape(t *testing.T) {
	opts := smallOpts("x264")
	opts.Requests = 4000
	opts.Warmup = 2000
	rows, _, err := AblationIntegrity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeanReadNsProt < r.MeanReadNs*0.99 {
			t.Errorf("%s: integrity made reads faster (%.1f -> %.1f)",
				r.Scheme, r.MeanReadNs, r.MeanReadNsProt)
		}
		if r.TreeNodeFetches == 0 {
			t.Errorf("%s: integrity tree never fetched a node", r.Scheme)
		}
	}
}

func TestIntegrityEndToEndCorrectness(t *testing.T) {
	cfg := config.Default()
	cfg.PCM.CapacityBytes = 1 << 28
	cfg.Crypto.IntegrityEnabled = true
	opts := Options{Cfg: cfg, Requests: 4000, Warmup: 1000, Seed: 9, Apps: []string{"gcc"}}
	s := NewSuite(opts)
	for _, scheme := range Schemes() {
		if _, err := s.Result("gcc", scheme); err != nil {
			t.Fatalf("%s with integrity: %v", scheme, err)
		}
	}
}

func TestAblationPredictionShape(t *testing.T) {
	opts := smallOpts("lbm", "leela")
	opts.Requests = 8000
	opts.Warmup = 5000
	rows, _, err := AblationPrediction(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		total := r.T1 + r.F2 + r.T3 + r.F4
		if total == 0 {
			t.Fatalf("%s: no predictions recorded", r.App)
		}
		if r.Accuracy < 0.5 {
			t.Errorf("%s: prediction accuracy %.2f below chance", r.App, r.Accuracy)
		}
		if r.F4 != r.WastedCrypto {
			t.Errorf("%s: F4 (%d) != wasted encryptions (%d)", r.App, r.F4, r.WastedCrypto)
		}
	}
	// lbm's prediction should be strong (the paper singles it out).
	if rows[0].App == "lbm" && rows[0].Accuracy < 0.7 {
		t.Errorf("lbm accuracy %.2f, want strong prediction", rows[0].Accuracy)
	}
}

func TestAblationRecoveryShape(t *testing.T) {
	opts := smallOpts("x264")
	opts.Requests = 9000
	opts.Warmup = 4000
	rows, _, err := AblationRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Losing all volatile state must hurt, then heal.
		if r.PostCrashNs <= r.PreCrashWriteNs {
			t.Errorf("%s: no post-crash transient (%.0f -> %.0f)",
				r.Scheme, r.PreCrashWriteNs, r.PostCrashNs)
		}
		if r.RecoveredNs > r.PostCrashNs {
			t.Errorf("%s: no recovery (%.0f stayed above %.0f)",
				r.Scheme, r.RecoveredNs, r.PostCrashNs)
		}
	}
}

func TestVerifyAllPasses(t *testing.T) {
	opts := smallOpts("leela", "deepsjeng")
	opts.Requests = 4000
	opts.Warmup = 1000
	rows, _, err := VerifyAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*5 { // 2 apps x (4 schemes + bcd)
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Passed {
			t.Errorf("%s/%s failed: %s", r.App, r.Scheme, r.Err)
		}
	}
}
