package experiments

import (
	"github.com/esdsim/esd/internal/stats"
)

// FigHybridRow compares ESD on plain PCM against ESD+CARAM (the
// content-aware hybrid DRAM/PCM tier) for one application: latency
// speedups, energy ratio, PCM endurance deltas, and the tier's own
// activity (hit rate, migration churn) that explains them.
type FigHybridRow struct {
	App string
	// WriteSpeedup / ReadSpeedup are ESD's mean latency divided by
	// ESD+CARAM's (>1 means the DRAM tier helped).
	WriteSpeedup float64
	ReadSpeedup  float64
	// EnergyRatio is ESD+CARAM's total energy over ESD's (<1 means the
	// tier saved energy; DRAM access energy is folded in).
	EnergyRatio float64
	// DeviceWriteRatio is ESD+CARAM's PCM media writes over ESD's —
	// WAL appends and writebacks included, so values near or above 1
	// with a much lower MaxWearRatio mean the tier traded concentrated
	// home-line wear for round-robin log wear.
	DeviceWriteRatio float64
	// MaxWearRatio is ESD+CARAM's hottest-line write count over ESD's:
	// the endurance headline, since PCM lifetime dies at the max.
	MaxWearRatio float64
	// DRAMHitRate is the fraction of timed data reads DRAM served.
	DRAMHitRate float64
	// AbsorbedWrites counts data writes DRAM absorbed (each spared a
	// PCM home write); Promotions/Demotions are the migration churn
	// paid for that.
	AbsorbedWrites uint64
	Promotions     uint64
	Demotions      uint64
}

// FigHybrid evaluates ESD+CARAM against plain ESD across the workload
// profiles: write/read speedup, energy ratio, PCM device-write and
// max-wear ratios, plus the hybrid tier's hit rate and migration
// counters. The per-app rows end with an average row (ratio columns
// averaged arithmetically over apps).
func FigHybrid(opts Options) ([]FigHybridRow, *stats.Table, error) {
	s := NewSuite(opts)
	tb := stats.NewTable("Hybrid media — ESD+CARAM vs ESD (ratios vs plain PCM)",
		"app", "write-speedup", "read-speedup", "energy-ratio",
		"device-write-ratio", "max-wear-ratio", "dram-hit-%", "absorbed", "promo", "demo")
	var rows []FigHybridRow
	var avg FigHybridRow
	for _, app := range s.AppNames() {
		base, err := s.Result(app, SchemeESD)
		if err != nil {
			return nil, nil, err
		}
		r, err := s.Result(app, SchemeESDCaram)
		if err != nil {
			return nil, nil, err
		}
		row := FigHybridRow{
			App:          app,
			WriteSpeedup: ratio(base.WriteHist.Mean(), r.WriteHist.Mean()),
			ReadSpeedup:  ratio(base.ReadHist.Mean(), r.ReadHist.Mean()),
		}
		if base.Energy.Total() > 0 {
			row.EnergyRatio = r.Energy.Total() / base.Energy.Total()
		}
		if base.DeviceWrites > 0 {
			row.DeviceWriteRatio = float64(r.DeviceWrites) / float64(base.DeviceWrites)
		}
		if base.Wear.MaxWear > 0 {
			row.MaxWearRatio = float64(r.Wear.MaxWear) / float64(base.Wear.MaxWear)
		}
		if h := r.Hybrid; h != nil {
			row.DRAMHitRate = h.HitRate()
			row.AbsorbedWrites = h.AbsorbedWrites
			row.Promotions = h.Promotions
			row.Demotions = h.Demotions
		}
		rows = append(rows, row)
		avg.WriteSpeedup += row.WriteSpeedup
		avg.ReadSpeedup += row.ReadSpeedup
		avg.EnergyRatio += row.EnergyRatio
		avg.DeviceWriteRatio += row.DeviceWriteRatio
		avg.MaxWearRatio += row.MaxWearRatio
		avg.DRAMHitRate += row.DRAMHitRate
		tb.AddRow(app, row.WriteSpeedup, row.ReadSpeedup, row.EnergyRatio,
			row.DeviceWriteRatio, row.MaxWearRatio, row.DRAMHitRate*100,
			row.AbsorbedWrites, row.Promotions, row.Demotions)
	}
	if n := float64(len(rows)); n > 0 {
		tb.AddRow("average", avg.WriteSpeedup/n, avg.ReadSpeedup/n, avg.EnergyRatio/n,
			avg.DeviceWriteRatio/n, avg.MaxWearRatio/n, avg.DRAMHitRate/n*100,
			uint64(0), uint64(0), uint64(0))
	}
	return rows, tb, nil
}
