package experiments

import (
	"errors"
	"io"

	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/sim"
	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/trace"
	"github.com/esdsim/esd/internal/workload"
)

// AblationPredictionRow quantifies DeWrite's prediction outcomes for one
// application — the T1/F2/T3/F4 cases of the paper's Fig. 4.
type AblationPredictionRow struct {
	App string
	// T1: predicted duplicate, was duplicate (serial path, correct).
	// F2: predicted duplicate, was unique (serial path + late encryption).
	// T3: predicted unique, was unique (parallel path, correct).
	// F4: predicted unique, was duplicate (wasted encryption).
	T1, F2, T3, F4 uint64
	Accuracy       float64
	WastedCrypto   uint64
}

// AblationPrediction measures DeWrite's duplication-predictor behaviour,
// quantifying the Fig. 4 discussion: mispredictions either serialize
// encryption (F2) or waste cryptographic work (F4).
func AblationPrediction(opts Options) ([]AblationPredictionRow, *stats.Table, error) {
	apps := opts.apps()
	tb := stats.NewTable("Ablation — DeWrite prediction outcomes (Fig. 4 cases)",
		"app", "T1-dup-hit", "F2-dup-miss", "T3-uniq-hit", "F4-uniq-miss", "accuracy", "wasted-crypto")
	var rows []AblationPredictionRow
	for _, p := range apps {
		env := memctrl.NewEnv(opts.effectiveCfg())
		dw := dedup.NewDeWrite(env)
		ctl := memctrl.NewController(env, dw)
		ctl.Warmup = opts.Warmup
		res, err := ctl.Run(workload.Stream(p, opts.Seed, opts.Warmup+opts.Requests))
		if err != nil {
			return nil, nil, err
		}
		st := res.Scheme
		row := AblationPredictionRow{App: p.Name, WastedCrypto: st.WastedEncryptions}
		// Reconstruct the quadrants from the counters: F4 is exactly the
		// wasted encryptions; F2 is the remaining mispredictions.
		row.F4 = st.WastedEncryptions
		row.F2 = st.Mispredicts - st.WastedEncryptions
		row.T1 = st.PredDup - row.F2
		row.T3 = st.PredUnique - row.F4
		total := st.PredDup + st.PredUnique
		if total > 0 {
			row.Accuracy = float64(row.T1+row.T3) / float64(total)
		}
		rows = append(rows, row)
		tb.AddRow(p.Name, row.T1, row.F2, row.T3, row.F4, row.Accuracy, row.WastedCrypto)
	}
	return rows, tb, nil
}

// AblationRecoveryRow measures the §III-E crash-recovery transient for one
// scheme: mean write latency and dedup rate in the window just before and
// just after a mid-run power failure.
type AblationRecoveryRow struct {
	Scheme          string
	PreCrashWriteNs float64
	PostCrashNs     float64
	RecoveredNs     float64
	PreDedupRate    float64
	PostDedupRate   float64
}

// AblationRecovery crashes each scheme mid-run and measures the transient:
// how much write latency and dedup effectiveness degrade immediately after
// all volatile state is lost, and how quickly they recover. ESD's recovery
// is pure warm-up (the EFIT refills); full-dedup schemes additionally
// re-fetch NVMM-resident fingerprints.
func AblationRecovery(opts Options) ([]AblationRecoveryRow, *stats.Table, error) {
	apps := opts.apps()
	if len(apps) > 2 {
		apps = apps[:2]
	}
	tb := stats.NewTable("Ablation — crash-recovery transient (mean write ns / dedup rate per window)",
		"scheme", "pre-crash-ns", "post-crash-ns", "recovered-ns", "pre-dedup", "post-dedup")
	window := opts.Requests / 3
	if window < 100 {
		window = 100
	}
	var rows []AblationRecoveryRow
	for _, scheme := range DedupSchemes() {
		row := AblationRecoveryRow{Scheme: scheme}
		var n float64
		for _, p := range apps {
			env := memctrl.NewEnv(opts.effectiveCfg())
			sch, err := NewScheme(env, scheme)
			if err != nil {
				return nil, nil, err
			}
			stream := workload.Stream(p, opts.Seed, opts.Warmup+3*window)
			wr := newWindowRunner(env, sch, stream)
			// Phase 1: warm-up + pre-crash window.
			pre, err := wr.run(opts.Warmup, window)
			if err != nil {
				return nil, nil, err
			}
			// Crash: all volatile state lost.
			if c, ok := sch.(memctrl.Crasher); ok {
				c.Crash(wr.now())
			}
			// Phase 2: post-crash window (cold caches).
			post, err := wr.run(0, window)
			if err != nil {
				return nil, nil, err
			}
			// Phase 3: recovered window.
			rec, err := wr.run(0, window)
			if err != nil {
				return nil, nil, err
			}
			row.PreCrashWriteNs += pre.writeNs
			row.PostCrashNs += post.writeNs
			row.RecoveredNs += rec.writeNs
			row.PreDedupRate += pre.dedupRate
			row.PostDedupRate += post.dedupRate
			n++
		}
		if n > 0 {
			row.PreCrashWriteNs /= n
			row.PostCrashNs /= n
			row.RecoveredNs /= n
			row.PreDedupRate /= n
			row.PostDedupRate /= n
		}
		rows = append(rows, row)
		tb.AddRow(row.Scheme, row.PreCrashWriteNs, row.PostCrashNs, row.RecoveredNs,
			row.PreDedupRate, row.PostDedupRate)
	}
	return rows, tb, nil
}

type windowResult struct {
	writeNs   float64
	dedupRate float64
}

// windowRunner drives a scheme through one continuous trace in measured
// windows, carrying the closed-loop state (in-flight ring, lag) across
// windows so crash boundaries do not reset simulated time.
type windowRunner struct {
	env    *memctrl.Env
	sch    memctrl.Scheme
	stream trace.Stream

	doneRing    []sim.Time
	ringIdx     int
	lag         sim.Time
	prevArrival sim.Time
}

func newWindowRunner(env *memctrl.Env, sch memctrl.Scheme, stream trace.Stream) *windowRunner {
	maxOut := env.Cfg.CPU.MaxOutstanding
	if maxOut < 1 {
		maxOut = 1
	}
	return &windowRunner{env: env, sch: sch, stream: stream, doneRing: make([]sim.Time, maxOut)}
}

// now returns the last effective arrival time.
func (w *windowRunner) now() sim.Time { return w.prevArrival }

// run processes skip unmeasured then measure measured records.
func (w *windowRunner) run(skip, measure int) (windowResult, error) {
	var res windowResult
	before := w.sch.Stats()
	var hist stats.Histogram
	seen := 0
	for seen < skip+measure {
		rec, err := w.stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, err
		}
		seen++
		arrival := rec.At + w.lag
		if slotFree := w.doneRing[w.ringIdx]; slotFree > arrival {
			w.lag += slotFree - arrival
			arrival = slotFree
		}
		if arrival < w.prevArrival {
			arrival = w.prevArrival
		}
		w.prevArrival = arrival

		measuring := seen > skip
		var done sim.Time
		switch rec.Op {
		case trace.OpWrite:
			out := w.sch.Write(rec.Addr, &rec.Data, arrival)
			done = out.Done
			if measuring {
				hist.Record(out.Done - arrival)
			}
		case trace.OpRead:
			out := w.sch.Read(rec.Addr, arrival)
			done = out.Done
		}
		w.doneRing[w.ringIdx] = done
		w.ringIdx = (w.ringIdx + 1) % len(w.doneRing)
		if measuring && seen == skip+1 {
			before = w.sch.Stats()
		}
	}
	delta := w.sch.Stats().Sub(before)
	res.writeNs = hist.Mean().Nanoseconds()
	res.dedupRate = delta.DedupRate()
	return res, nil
}
