package experiments

import (
	"fmt"
	"io"

	"github.com/esdsim/esd/internal/stats"
	"github.com/esdsim/esd/internal/workload"
)

// WriteReport runs the complete evaluation campaign and writes a
// paper-vs-measured markdown report (the generator behind EXPERIMENTS.md).
// Every figure of the paper's §IV appears with the claim the paper makes,
// the corresponding measurement from this reproduction, and an automatic
// agreement check of the qualitative shape.
func WriteReport(opts Options, w io.Writer) error {
	r := &reporter{opts: opts, w: w}
	r.headerf(`# EXPERIMENTS — paper vs. measured

Reproduction campaign: %d applications, %d measured requests each after
%d warm-up requests, seed %d. Regenerate with:

`+"```sh\ngo run ./cmd/figures -fig all -requests %d -warmup %d -o results/\n```"+`

The paper evaluates on gem5 + NVMain with real SPEC CPU 2017 / PARSEC
traces; this reproduction uses the substitutions catalogued in DESIGN.md.
Absolute numbers therefore differ; the comparison below is about *shape*:
who wins, in which direction, by roughly what kind of factor, and through
which mechanism. Each section states the paper's claim, the measured
result, and whether the shape holds.

`, len(opts.apps()), opts.Requests, opts.Warmup, opts.Seed, opts.Requests, opts.Warmup)

	for _, section := range []func() error{
		r.fig1, r.fig2, r.fig3, r.fig5, r.fig8, r.fig11, r.fig12, r.fig13,
		r.fig14, r.fig15, r.fig16, r.fig17, r.fig18, r.fig19, r.ablations,
	} {
		if err := section(); err != nil {
			return err
		}
	}
	return r.err
}

type reporter struct {
	opts Options
	w    io.Writer
	err  error
}

func (r *reporter) headerf(format string, args ...interface{}) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

func (r *reporter) section(title, paperClaim string) {
	r.headerf("## %s\n\n**Paper:** %s\n\n", title, paperClaim)
}

func (r *reporter) table(tb *stats.Table) {
	if r.err != nil {
		return
	}
	r.headerf("```\n")
	if r.err == nil {
		r.err = tb.Render(r.w)
	}
	r.headerf("```\n\n")
}

func (r *reporter) verdict(ok bool, detail string) {
	mark := "HOLDS"
	if !ok {
		mark = "DIVERGES"
	}
	r.headerf("**Shape %s.** %s\n\n", mark, detail)
}

func (r *reporter) fig1() error {
	rows, tb, err := Fig1(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 1 — Duplicate rate of cache lines",
		"duplicate cache lines range from 33.1% to 99.9% across the 20 applications, averaging 62.9%; deepsjeng and roms are dominated by zero lines.")
	r.table(tb)
	sum, lo, hi := 0.0, 1.0, 0.0
	for _, row := range rows {
		sum += row.DupRate
		if row.DupRate < lo {
			lo = row.DupRate
		}
		if row.DupRate > hi {
			hi = row.DupRate
		}
	}
	avg := sum / float64(len(rows))
	r.verdict(avg > 0.58 && avg < 0.68 && hi > 0.98,
		fmt.Sprintf("Measured mean %.1f%% (paper 62.9%%), range %.1f%%–%.1f%% (paper 33.1%%–99.9%%).",
			avg*100, lo*100, hi*100))
	return nil
}

func (r *reporter) fig2() error {
	rows, tb, err := Fig2(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 2 — Worst-case normalized performance (leela, lbm)",
		"straightforward inline deduplication can significantly degrade performance in the worst case; Dedup_SHA1 falls far below the no-dedup baseline while ESD stays above it.")
	r.table(tb)
	ok := true
	for _, row := range rows {
		if row.Values[SchemeSHA1] >= 1 {
			ok = false
		}
		if row.Values[SchemeESD] <= row.Values[SchemeSHA1] {
			ok = false
		}
	}
	r.verdict(ok, "Dedup_SHA1 is below baseline on both worst-case applications and ESD is far above it, as in the paper.")
	return nil
}

func (r *reporter) fig3() error {
	rows, tb, err := Fig3(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 3 — Content locality (reference-count distribution)",
		"cache lines referenced >1000 times are ~0.08% of unique lines but account for ~42.7% of pre-dedup storage volume.")
	r.table(tb)
	var hotU, hotW float64
	for _, row := range rows {
		hotU += row.UniqueShares[workload.Num1000Plus]
		hotW += row.WriteShares[workload.Num1000Plus]
	}
	n := float64(len(rows))
	r.verdict(hotU/n < 0.01 && hotW/n > 0.25,
		fmt.Sprintf("Measured: num1000+ uniques %.3f%% of unique lines carry %.1f%% of write volume (paper: 0.08%% / 42.7%%).",
			hotU/n*100, hotW/n*100))
	return nil
}

func (r *reporter) fig5() error {
	rows, tb, err := Fig5(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 5 — Full dedup's fingerprint NVMM-lookup bottleneck",
		"on average 51.0% of duplicates are filtered by cached fingerprints and only 13.7% by NVMM-resident ones, yet those lookups cost up to 90.7% (mean 49.2%) of write-path time.")
	r.table(tb)
	var cacheS, nvmmS, lookS float64
	for _, row := range rows {
		cacheS += row.DupByCacheShare
		nvmmS += row.DupByNVMMShare
		lookS += row.LookupLatencyShare
	}
	n := float64(len(rows))
	detail := fmt.Sprintf("Measured: %.1f%% filtered by cache vs %.1f%% by NVMM; lookups cost %.1f%% of write-path time.",
		cacheS/n*100, nvmmS/n*100, lookS/n*100)
	if r.opts.FPCacheScale <= 1 {
		detail += " Note: at laptop trace scale the 512 KB fingerprint cache holds nearly the whole live fingerprint population, so NVMM-resident fingerprints filter almost nothing — the asymmetry the paper exploits, in its most extreme form. Re-run with -fpcachescale 16 to emulate the paper's fingerprint-population pressure and watch the NVMM share appear."
	}
	r.verdict(cacheS/n > nvmmS/n,
		detail)
	return nil
}

func (r *reporter) fig8() error {
	rows, tb, err := Fig8(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 8 — Fingerprint collision probability",
		"the ECC fingerprint collides far less than CRC; cryptographic hashes effectively never collide.")
	r.table(tb)
	var crc16, ecc64, sha int
	for _, row := range rows {
		switch row.Kind.String() {
		case "crc16":
			crc16 = row.Collisions
		case "ecc":
			ecc64 = row.Collisions
		case "sha1":
			sha = row.Collisions
		}
	}
	r.verdict(ecc64 <= crc16 && sha == 0,
		fmt.Sprintf("Measured collisions: crc16=%d, ecc=%d, sha1=%d over the pooled contents.", crc16, ecc64, sha))
	return nil
}

func (r *reporter) appFigure(id, title, claim string,
	fn func(Options) ([]AppRow, *stats.Table, error),
	check func(avg SchemeValues, rows []AppRow) (bool, string)) error {
	rows, tb, err := fn(r.opts)
	if err != nil {
		return err
	}
	r.section(title, claim)
	r.table(tb)
	avg := SchemeValues{}
	for _, row := range rows {
		for s, v := range row.Values {
			avg[s] += v
		}
	}
	for s := range avg {
		avg[s] /= float64(len(rows))
	}
	ok, detail := check(avg, rows)
	r.verdict(ok, detail)
	return nil
}

func (r *reporter) fig11() error {
	return r.appFigure("fig11", "Fig. 11 — Write reduction vs Baseline",
		"ESD reduces cache-line writes by 47.8% on average (up to 99.9% for deepsjeng/roms); full dedup removes ~18pp more because it also catches low-reference duplicates.",
		Fig11,
		func(avg SchemeValues, rows []AppRow) (bool, string) {
			allPositive := true
			for _, row := range rows {
				if row.Values[SchemeESD] <= 0 {
					allPositive = false
				}
			}
			return allPositive && avg[SchemeESD] <= avg[SchemeSHA1]+1,
				fmt.Sprintf("Measured averages: ESD %.1f%%, Dedup_SHA1 %.1f%%, DeWrite %.1f%%. ESD eliminates writes on every application and never exceeds full dedup. (The paper's ~18pp selective-dedup gap needs its 10^9-request scale; see DESIGN.md §5b.)",
					avg[SchemeESD], avg[SchemeSHA1], avg[SchemeDeWrite])
		})
}

func (r *reporter) fig12() error {
	return r.appFigure("fig12", "Fig. 12 — Write speedup vs Baseline",
		"ESD speeds up writes for all applications (up to 3.4x vs Baseline, 4.3x vs Dedup_SHA1, 2.6x vs DeWrite); Dedup_SHA1 helps only deepsjeng/lbm/roms-style applications.",
		Fig12,
		func(avg SchemeValues, rows []AppRow) (bool, string) {
			allAbove := true
			for _, row := range rows {
				if row.Values[SchemeESD] <= 1 {
					allAbove = false
				}
			}
			return allAbove && avg[SchemeESD] > avg[SchemeDeWrite] && avg[SchemeDeWrite] > avg[SchemeSHA1],
				fmt.Sprintf("Measured averages: ESD %.2fx > DeWrite %.2fx > Dedup_SHA1 %.2fx, with ESD above 1x on all applications.",
					avg[SchemeESD], avg[SchemeDeWrite], avg[SchemeSHA1])
		})
}

func (r *reporter) fig13() error {
	return r.appFigure("fig13", "Fig. 13 — Read speedup vs Baseline",
		"ESD speeds up reads for all applications (up to 5.3x) by removing write-induced interference; Dedup_SHA1 degrades reads for most applications.",
		Fig13,
		func(avg SchemeValues, rows []AppRow) (bool, string) {
			above := 0
			for _, row := range rows {
				if row.Values[SchemeESD] > 1 {
					above++
				}
			}
			return above >= len(rows)*9/10 && avg[SchemeSHA1] < 1,
				fmt.Sprintf("Measured: ESD above 1x on %d/%d applications (mean %.2fx); Dedup_SHA1 mean %.2fx degrades reads as in the paper.",
					above, len(rows), avg[SchemeESD], avg[SchemeSHA1])
		})
}

func (r *reporter) fig14() error {
	return r.appFigure("fig14", "Fig. 14 — IPC normalized to Baseline",
		"ESD improves IPC for all applications (up to 2.4x); Dedup_SHA1 decreases IPC for most.",
		Fig14,
		func(avg SchemeValues, rows []AppRow) (bool, string) {
			return avg[SchemeESD] > 1 && avg[SchemeESD] > avg[SchemeSHA1],
				fmt.Sprintf("Measured averages: ESD %.2fx, DeWrite %.2fx, Dedup_SHA1 %.2fx.",
					avg[SchemeESD], avg[SchemeDeWrite], avg[SchemeSHA1])
		})
}

func (r *reporter) fig15() error {
	rows, tb, err := Fig15(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 15 — Write-latency CDF / tail latency",
		"ESD has much shorter tail latencies than Dedup_SHA1 and DeWrite across the eight selected applications.")
	r.table(tb)
	wins := 0
	apps := map[string]bool{}
	for _, row := range rows {
		apps[row.App] = true
	}
	byApp := map[string]map[string]Fig15Row{}
	for _, row := range rows {
		if byApp[row.App] == nil {
			byApp[row.App] = map[string]Fig15Row{}
		}
		byApp[row.App][row.Scheme] = row
	}
	for _, schemes := range byApp {
		if schemes[SchemeESD].P99 <= schemes[SchemeSHA1].P99 &&
			schemes[SchemeESD].P99 <= schemes[SchemeDeWrite].P99 {
			wins++
		}
	}
	r.verdict(wins >= len(apps)*3/4,
		fmt.Sprintf("ESD has the lowest P99 write latency on %d/%d applications.", wins, len(apps)))
	return nil
}

func (r *reporter) fig16() error {
	return r.appFigure("fig16", "Fig. 16 — Energy normalized to Baseline",
		"ESD reduces energy by up to 69.3% vs Baseline, 69.2% vs Dedup_SHA1 and 56.6% vs DeWrite; hashing makes Dedup_SHA1 comparable to or worse than Baseline.",
		Fig16,
		func(avg SchemeValues, rows []AppRow) (bool, string) {
			return avg[SchemeESD] < 1 && avg[SchemeESD] < avg[SchemeDeWrite] &&
					avg[SchemeDeWrite] < avg[SchemeSHA1],
				fmt.Sprintf("Measured averages (lower is better): ESD %.2fx < DeWrite %.2fx < Dedup_SHA1 %.2fx of Baseline energy.",
					avg[SchemeESD], avg[SchemeDeWrite], avg[SchemeSHA1])
		})
}

func (r *reporter) fig17() error {
	rows, tb, err := Fig17(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 17 — Write-latency profile",
		"fingerprint computation dominates Dedup_SHA1 (~80%); DeWrite still pays CRC plus ~23% NVMM lookups; ESD's write path is dominated by actual line reads and writes with no fingerprint cost at all.")
	r.table(tb)
	byScheme := map[string]Fig17Row{}
	for _, row := range rows {
		byScheme[row.Scheme] = row
	}
	ok := byScheme[SchemeSHA1].FPCompute > 0.5 &&
		byScheme[SchemeESD].FPCompute < 0.1 &&
		byScheme[SchemeESD].FPLookupNVMM == 0 &&
		byScheme[SchemeDeWrite].FPLookupNVMM > 0
	r.verdict(ok,
		fmt.Sprintf("Measured: Dedup_SHA1 spends %.0f%% on fingerprint computation; ESD %.0f%% with zero NVMM lookups; DeWrite pays %.0f%% NVMM lookups.",
			byScheme[SchemeSHA1].FPCompute*100, byScheme[SchemeESD].FPCompute*100,
			byScheme[SchemeDeWrite].FPLookupNVMM*100))
	return nil
}

func (r *reporter) fig18() error {
	opts := r.opts
	// The sweep runs 12 simulations per application; keep it tractable.
	if len(opts.apps()) > 6 {
		opts.Apps = []string{"lbm", "mcf", "gcc", "x264", "dedup", "leela"}
	}
	rows, tb, err := Fig18(opts)
	if err != nil {
		return err
	}
	r.section("Fig. 18 — EFIT/AMT cache-size sensitivity",
		"hit rates rise with cache size but saturate around 512 KB (gains of ~0.25% beyond), and LRCU beats plain LRU — validating selective dedup with a 512 KB EFIT.")
	r.table(tb)
	ok := true
	for i := 1; i < len(rows); i++ {
		if rows[i].EFITHitLRCU+0.05 < rows[i-1].EFITHitLRCU {
			ok = false
		}
	}
	var at512, at2048 float64
	for _, row := range rows {
		if row.SizeBytes == 512<<10 {
			at512 = row.EFITHitLRCU
		}
		if row.SizeBytes == 2048<<10 {
			at2048 = row.EFITHitLRCU
		}
	}
	if at2048-at512 > 0.1 {
		ok = false
	}
	r.verdict(ok,
		fmt.Sprintf("EFIT hit rate is monotone in size and gains only %.1fpp from 512 KB to 2 MB — the knee the paper uses to justify 512 KB.",
			(at2048-at512)*100))
	return nil
}

func (r *reporter) fig19() error {
	rows, tb, err := Fig19(r.opts)
	if err != nil {
		return err
	}
	r.section("Fig. 19 — Metadata space overhead",
		"ESD cuts dedup metadata by 81.2% vs Dedup_SHA1 (DeWrite by 60.9%) because the EFIT never occupies NVMM; only the AMT remains there.")
	r.table(tb)
	byScheme := map[string]Fig19Row{}
	for _, row := range rows {
		byScheme[row.Scheme] = row
	}
	ok := byScheme[SchemeESD].Normalized < byScheme[SchemeDeWrite].Normalized &&
		byScheme[SchemeDeWrite].Normalized < 1
	r.verdict(ok,
		fmt.Sprintf("Measured NVMM metadata: ESD %.2fx, DeWrite %.2fx of Dedup_SHA1's. The ordering matches; the exact ratios depend on the unique-line population (see DESIGN.md).",
			byScheme[SchemeESD].Normalized, byScheme[SchemeDeWrite].Normalized))
	return nil
}

func (r *reporter) ablations() error {
	opts := r.opts
	if len(opts.apps()) > 6 {
		opts.Apps = []string{"lbm", "mcf", "x264", "dedup"}
	}
	r.headerf("## Ablations beyond the paper\n\n")

	if _, tb, err := AblationEFITPolicy(opts); err != nil {
		return err
	} else {
		r.headerf("LRCU vs LRU for the EFIT cache (the paper sweeps this inside Fig. 18):\n\n")
		r.table(tb)
	}
	if _, tb, err := AblationReferH(opts); err != nil {
		return err
	} else {
		r.headerf("referH saturation width (§III-B fixes one byte; smaller widths overflow and force rewrites):\n\n")
		r.table(tb)
	}
	if _, tb, err := AblationSelective(opts); err != nil {
		return err
	} else {
		r.headerf("Selective vs full deduplication, summarized:\n\n")
		r.table(tb)
	}
	if _, tb, err := AblationCapacity(opts); err != nil {
		return err
	} else {
		r.headerf("Effective capacity with the BCD (base+delta) extension on a near-duplicate workload — partial duplicates are invisible to exact-only dedup:\n\n")
		r.table(tb)
	}
	if _, tb, err := AblationIntegrity(opts); err != nil {
		return err
	} else {
		r.headerf("Merkle counter-tree (replay protection) overhead per scheme — deduplication concentrates hot counter blocks, so the tree cache absorbs verification almost entirely for the dedup schemes:\n\n")
		r.table(tb)
	}
	return nil
}
