package experiments

import (
	"fmt"
	"io"

	"github.com/esdsim/esd/internal/stats"
)

// RenderChart draws a terminal chart for the figures that have a natural
// graphical form: grouped bars for the per-application comparisons
// (fig11-fig14, fig16) and log-scale CDFs for fig15. Figures without a
// chart form return an error directing the caller to the table output.
func RenderChart(name string, opts Options, w io.Writer) error {
	switch name {
	case "fig11":
		rows, _, err := Fig11(opts)
		if err != nil {
			return err
		}
		return renderAppBars(w, "Fig. 11 — NVMM write reduction vs Baseline", "%", rows)
	case "fig12":
		rows, _, err := Fig12(opts)
		if err != nil {
			return err
		}
		return renderAppBars(w, "Fig. 12 — Write speedup vs Baseline", "x", rows)
	case "fig13":
		rows, _, err := Fig13(opts)
		if err != nil {
			return err
		}
		return renderAppBars(w, "Fig. 13 — Read speedup vs Baseline", "x", rows)
	case "fig14":
		rows, _, err := Fig14(opts)
		if err != nil {
			return err
		}
		return renderAppBars(w, "Fig. 14 — IPC normalized to Baseline", "x", rows)
	case "fig16":
		rows, _, err := Fig16(opts)
		if err != nil {
			return err
		}
		return renderAppBars(w, "Fig. 16 — Energy normalized to Baseline (lower is better)", "x", rows)
	case "fig15":
		rows, _, err := Fig15(opts)
		if err != nil {
			return err
		}
		byApp := map[string]map[string][]stats.CDFPoint{}
		for _, r := range rows {
			if byApp[r.App] == nil {
				byApp[r.App] = map[string][]stats.CDFPoint{}
			}
			byApp[r.App][r.Scheme] = r.CDF
		}
		for _, app := range Fig15Apps {
			series, ok := byApp[app]
			if !ok {
				continue
			}
			if err := stats.RenderCDF(w,
				fmt.Sprintf("Fig. 15 — write latency CDF (%s)", app),
				series, 64, 14); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("experiments: %q has no chart form; use the table output", name)
	}
}

func renderAppBars(w io.Writer, title, unit string, rows []AppRow) error {
	chart := stats.NewBarChart(title, unit, DedupSchemes()...)
	for _, r := range rows {
		for _, scheme := range DedupSchemes() {
			chart.Set(scheme, r.App, r.Values[scheme])
		}
	}
	return chart.Render(w)
}
