// Package experiments regenerates every table and figure of the ESD
// paper's evaluation (§IV). Each FigN function produces both structured
// rows (for tests and programmatic use) and a rendered plain-text table
// (for the cmd/figures tool), reusing a shared cache of per-(application,
// scheme) simulation runs so the whole evaluation costs one pass.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/esdsim/esd/internal/config"
	"github.com/esdsim/esd/internal/core"
	"github.com/esdsim/esd/internal/dedup"
	"github.com/esdsim/esd/internal/memctrl"
	"github.com/esdsim/esd/internal/workload"
)

// Scheme names in canonical presentation order.
const (
	SchemeBaseline = "baseline"
	SchemeSHA1     = "dedup-sha1"
	SchemeDeWrite  = "dewrite"
	SchemeESD      = "esd"
)

// Schemes lists the four evaluated schemes in presentation order.
func Schemes() []string {
	return []string{SchemeBaseline, SchemeSHA1, SchemeDeWrite, SchemeESD}
}

// DedupSchemes lists the three deduplicating schemes.
func DedupSchemes() []string {
	return []string{SchemeSHA1, SchemeDeWrite, SchemeESD}
}

// SchemeBCD is the extension scheme beyond the paper's four: a simplified
// Base-and-Compressed-Difference design (ASPLOS'21 related work). It is
// not part of the per-figure scheme set but is available to NewScheme and
// the capacity ablation.
const SchemeBCD = "bcd"

// SchemeESDCaram is ESD on a content-aware hybrid DRAM/PCM media tier
// (CARAM, arxiv 2007.13661): the identical ESD write path, with the Env's
// media backend replaced by a DRAM buffer in front of PCM whose placement
// is driven by access heat and the dedup engine's reference signal, and
// whose crash consistency comes from a rotating write-ahead log in PCM.
const SchemeESDCaram = "esd+caram"

// NewScheme builds a scheme by name on env. A hybrid scheme name enables
// the hybrid media tier on env as a side effect, so it must run before
// any traffic flows through env.
func NewScheme(env *memctrl.Env, name string) (memctrl.Scheme, error) {
	switch name {
	case SchemeBaseline:
		return dedup.NewBaseline(env), nil
	case SchemeSHA1:
		return dedup.NewSHA1(env), nil
	case SchemeDeWrite:
		return dedup.NewDeWrite(env), nil
	case SchemeESD:
		return core.New(env), nil
	case SchemeBCD:
		return dedup.NewBCD(env), nil
	case SchemeESDCaram:
		if err := env.EnableHybridMedia(); err != nil {
			return nil, err
		}
		return core.New(env, core.WithName(SchemeESDCaram)), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// Options parameterizes an evaluation campaign.
type Options struct {
	// Cfg is the system configuration (Table I defaults).
	Cfg config.Config
	// Requests is the measured trace length per application.
	Requests int
	// Warmup is the number of unmeasured warm-up records preceding the
	// measured window (the paper warms the system before each evaluation).
	Warmup int
	// Seed drives all generators.
	Seed uint64
	// Apps restricts the evaluation to a subset (nil/empty = all 20).
	Apps []string
	// FPCacheScale shrinks the fingerprint caches (EFIT, the SHA-1 and
	// DeWrite fingerprint caches) by this factor — scaled-down-simulation
	// methodology: the paper's 10^9-request runs make the unique
	// fingerprint population vastly exceed the 512 KB caches, which a
	// laptop-scale trace cannot; dividing the caches instead reproduces
	// the same pressure ratio. 1 (default) disables scaling. The AMT
	// cache is not scaled: its pressure tracks the address footprint,
	// which the profiles already size realistically.
	FPCacheScale int
}

// DefaultOptions returns a campaign sized to finish in seconds while
// keeping the statistics stable.
func DefaultOptions() Options {
	return Options{Cfg: config.Default(), Requests: 30000, Warmup: 20000, Seed: 1}
}

// effectiveCfg applies FPCacheScale to the fingerprint caches.
func (o Options) effectiveCfg() config.Config {
	cfg := o.Cfg
	if o.FPCacheScale > 1 {
		cfg.Meta.EFITCacheBytes /= o.FPCacheScale
		if cfg.Meta.EFITCacheBytes < cfg.Meta.EFITEntryBytes {
			cfg.Meta.EFITCacheBytes = cfg.Meta.EFITEntryBytes
		}
		cfg.SHA1.FPCacheBytes /= o.FPCacheScale
		if cfg.SHA1.FPCacheBytes < cfg.SHA1.FPEntryBytes {
			cfg.SHA1.FPCacheBytes = cfg.SHA1.FPEntryBytes
		}
		cfg.DeWrite.FPCacheBytes /= o.FPCacheScale
		if cfg.DeWrite.FPCacheBytes < cfg.DeWrite.FPEntryBytes {
			cfg.DeWrite.FPCacheBytes = cfg.DeWrite.FPEntryBytes
		}
	}
	return cfg
}

func (o Options) apps() []workload.Profile {
	if len(o.Apps) == 0 {
		return workload.Profiles()
	}
	var out []workload.Profile
	for _, name := range o.Apps {
		if p, ok := workload.ByName(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// Suite lazily runs and caches one simulation per (application, scheme).
// Results are additionally memoized process-wide keyed by the full
// campaign parameters, so regenerating several figures with identical
// Options (e.g. `figures -fig all`) simulates each (app, scheme) pair
// exactly once.
type Suite struct {
	Opts    Options
	results map[string]*memctrl.RunResult
}

// NewSuite creates an empty result cache for opts.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts, results: make(map[string]*memctrl.RunResult)}
}

// memoKey identifies one simulation across Suites. config.Config contains
// only value types, so the whole key is comparable.
type memoKey struct {
	cfg      config.Config
	requests int
	warmup   int
	seed     uint64
	app      string
	scheme   string
}

var (
	memoMu sync.Mutex
	memo   = map[memoKey]*memctrl.RunResult{}
)

// Result returns (running on first use) the simulation of app under scheme.
func (s *Suite) Result(app, scheme string) (*memctrl.RunResult, error) {
	key := app + "/" + scheme
	if r, ok := s.results[key]; ok {
		return r, nil
	}
	profile, ok := workload.ByName(app)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown application %q", app)
	}
	cfg := s.Opts.effectiveCfg()
	mk := memoKey{
		cfg:      cfg,
		requests: s.Opts.Requests,
		warmup:   s.Opts.Warmup,
		seed:     s.Opts.Seed,
		app:      app,
		scheme:   scheme,
	}
	memoMu.Lock()
	if r, ok := memo[mk]; ok {
		memoMu.Unlock()
		s.results[key] = r
		return r, nil
	}
	memoMu.Unlock()

	env := memctrl.NewEnv(cfg)
	sch, err := NewScheme(env, scheme)
	if err != nil {
		return nil, err
	}
	ctl := memctrl.NewController(env, sch)
	ctl.Warmup = s.Opts.Warmup
	res, err := ctl.Run(workload.Stream(profile, s.Opts.Seed, s.Opts.Warmup+s.Opts.Requests))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", app, scheme, err)
	}
	memoMu.Lock()
	memo[mk] = res
	memoMu.Unlock()
	s.results[key] = res
	return res, nil
}

// AppNames returns the evaluated application names in suite order.
func (s *Suite) AppNames() []string {
	var out []string
	for _, p := range s.Opts.apps() {
		out = append(out, p.Name)
	}
	return out
}

// profileOf returns the workload profile for app (must exist).
func (s *Suite) profileOf(app string) workload.Profile {
	p, _ := workload.ByName(app)
	return p
}

// sortedKeys is a test helper exposing the cached run keys.
func (s *Suite) sortedKeys() []string {
	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
