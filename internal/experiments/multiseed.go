package experiments

import (
	"fmt"

	"github.com/esdsim/esd/internal/stats"
)

// MultiSeedRow is one (application, scheme) cell aggregated over seeds.
type MultiSeedRow struct {
	App    string
	Scheme string
	Mean   float64
	Std    float64
	N      int
}

// appRowFigures maps the per-application figures that support multi-seed
// aggregation to their drivers.
func appRowFigures() map[string]func(Options) ([]AppRow, *stats.Table, error) {
	return map[string]func(Options) ([]AppRow, *stats.Table, error){
		"fig11": Fig11,
		"fig12": Fig12,
		"fig13": Fig13,
		"fig14": Fig14,
		"fig16": Fig16,
	}
}

// MultiSeed repeats a per-application figure across nSeeds seeds (opts.Seed,
// opts.Seed+1, ...) and reports mean and sample standard deviation per
// (application, scheme) — the statistical-confidence companion to the
// single-seed figures.
func MultiSeed(name string, opts Options, nSeeds int) ([]MultiSeedRow, *stats.Table, error) {
	fn, ok := appRowFigures()[name]
	if !ok {
		return nil, nil, fmt.Errorf("experiments: %q does not support multi-seed runs (have fig11-14, fig16)", name)
	}
	if nSeeds < 2 {
		return nil, nil, fmt.Errorf("experiments: multi-seed needs at least 2 seeds")
	}

	// samples[app][scheme] accumulates per-seed values.
	samples := map[string]map[string][]float64{}
	var appOrder []string
	for s := 0; s < nSeeds; s++ {
		o := opts
		o.Seed = opts.Seed + uint64(s)
		rows, _, err := fn(o)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range rows {
			if samples[r.App] == nil {
				samples[r.App] = map[string][]float64{}
				appOrder = append(appOrder, r.App)
			}
			for scheme, v := range r.Values {
				samples[r.App][scheme] = append(samples[r.App][scheme], v)
			}
		}
	}

	tb := stats.NewTable(
		fmt.Sprintf("%s over %d seeds (mean ± stddev)", name, nSeeds),
		"app", "scheme", "mean", "stddev", "cv-%")
	var out []MultiSeedRow
	for _, app := range appOrder {
		for _, scheme := range DedupSchemes() {
			vals := samples[app][scheme]
			if len(vals) == 0 {
				continue
			}
			row := MultiSeedRow{
				App:    app,
				Scheme: scheme,
				Mean:   stats.Mean(vals),
				Std:    stats.StdDev(vals),
				N:      len(vals),
			}
			out = append(out, row)
			cv := 0.0
			if row.Mean != 0 {
				cv = row.Std / row.Mean * 100
			}
			tb.AddRow(app, scheme, row.Mean, row.Std, cv)
		}
	}
	return out, tb, nil
}
