package experiments

import (
	"fmt"
	"sort"

	"github.com/esdsim/esd/internal/stats"
)

// Runner regenerates one figure/table as a rendered table.
type Runner func(Options) (*stats.Table, error)

func tableOnly[R any](fn func(Options) (R, *stats.Table, error)) Runner {
	return func(opts Options) (*stats.Table, error) {
		_, tb, err := fn(opts)
		return tb, err
	}
}

// Registry maps experiment ids ("fig1", "fig11", "ablation-referh", ...)
// to their runners. Every figure and table of the paper's evaluation is
// present, plus the extra ablations documented in DESIGN.md.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":                tableOnly(Fig1),
		"fig2":                tableOnly(Fig2),
		"fig3":                tableOnly(Fig3),
		"fig5":                tableOnly(Fig5),
		"fig8":                tableOnly(Fig8),
		"fig11":               tableOnly(Fig11),
		"fig12":               tableOnly(Fig12),
		"fig13":               tableOnly(Fig13),
		"fig14":               tableOnly(Fig14),
		"fig15":               tableOnly(Fig15),
		"fig16":               tableOnly(Fig16),
		"fig17":               tableOnly(Fig17),
		"fig18":               tableOnly(Fig18),
		"fig19":               tableOnly(Fig19),
		"hybrid":              tableOnly(FigHybrid),
		"ablation-policy":     tableOnly(AblationEFITPolicy),
		"ablation-referh":     tableOnly(AblationReferH),
		"ablation-selective":  tableOnly(AblationSelective),
		"ablation-capacity":   tableOnly(AblationCapacity),
		"ablation-integrity":  tableOnly(AblationIntegrity),
		"ablation-prediction": tableOnly(AblationPrediction),
		"ablation-recovery":   tableOnly(AblationRecovery),
		"verify":              tableOnly(VerifyAll),
	}
}

// Names returns the registry keys in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run executes the named experiment.
func Run(name string, opts Options) (*stats.Table, error) {
	r, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(opts)
}
